package debug

import (
	"fmt"
	"strings"

	"opec/internal/mach"
	"opec/internal/trace"
)

// This file implements the query engine. Every query renders
// deterministic text: two sessions over the same run produce
// byte-identical answers, which is what lets CI pin them.

// verifier proves a re-execution passes through a keyframe: it tracks
// the stream position and, at the keyframe's event index, digests the
// live machine for comparison against the captured frame.
type verifier struct {
	m      *mach.Machine
	target int
	n      int
	digest string
}

func (v *verifier) HandleEvent(e trace.Event) {
	if v.n == v.target && v.m != nil && v.digest == "" {
		v.digest = v.m.StateDigest()
	}
	v.n++
}

// bind anchors the verifier at the arming point — the position boot
// keyframes are captured at.
func (v *verifier) bind(m *mach.Machine, boot bool) {
	v.m = m
	if boot && v.digest == "" {
		v.digest = m.StateDigest()
	}
}

// Seek re-executes the run from the boot checkpoint through cycle c:
// it restores the nearest keyframe's anchor, verifies the replayed
// machine digests identically at the keyframe's stream position, and
// asserts the regenerated trace suffix from that position on is
// byte-identical to the recording. The rendered answer shows the
// keyframe used, the verification verdicts, and the events around c.
func (s *Session) Seek(c uint64) (string, error) {
	return s.timed(func() (string, error) { return s.seek(c) })
}

func (s *Session) seek(c uint64) (string, error) {
	if last := s.store.LastCycle(); c > last {
		return "", fmt.Errorf("debug: seek %d is past the end of the run (last event at cycle %d)", c, last)
	}
	kf := s.keys.Nearest(c)

	buf := trace.NewBuffer(s.cfg.TraceCap)
	st := NewStore(buf)
	ver := &verifier{target: kf.Event}
	buf.Attach(ver)
	if _, _, _, err := s.execute(buf, func(m *mach.Machine) {
		ver.bind(m, kf.Reason == "boot")
	}); err != nil {
		return "", err
	}
	if err := st.Finish(); err != nil {
		return "", err
	}

	if ver.digest == "" {
		return "", fmt.Errorf("debug: seek %d: re-execution never reached keyframe event %d", c, kf.Event)
	}
	if ver.digest != kf.State.Digest() {
		return "", fmt.Errorf("debug: seek %d: replayed state %s diverged from keyframe %s at event %d — the run is not deterministic",
			c, ver.digest, kf.State.Digest(), kf.Event)
	}
	want := s.store.RenderRange(kf.Event, s.store.Len())
	got := st.RenderRange(kf.Event, st.Len())
	if want != got {
		return "", fmt.Errorf("debug: seek %d: regenerated trace suffix from event %d differs from the recording", c, kf.Event)
	}

	var b strings.Builder
	idx := s.store.IndexAt(c)
	fmt.Fprintf(&b, "seek %d: event %d of %d\n", c, idx, s.store.Len())
	fmt.Fprintf(&b, "  keyframe: cycle=%d event=%d reason=%s state=%s sp=%#08x priv=%v\n",
		kf.Cycle, kf.Event, kf.Reason, kf.State.Digest(), kf.State.SP, kf.State.Privileged)
	fmt.Fprintf(&b, "  replayed: %d events, state digest at keyframe verified, suffix [%d:%d) byte-identical\n",
		st.Len(), kf.Event, st.Len())
	s.renderAround(&b, idx)
	return b.String(), nil
}

// renderAround prints the events surrounding stream index idx, the
// target marked.
func (s *Session) renderAround(b *strings.Builder, idx int) {
	lo, hi := idx-3, idx+4
	if lo < 0 {
		lo = 0
	}
	if hi > s.store.Len() {
		hi = s.store.Len()
	}
	for i := lo; i < hi; i++ {
		mark := "  "
		if i == idx {
			mark = "=>"
		}
		fmt.Fprintf(b, "  %s [%s] %s\n", mark, s.store.DomainName(s.store.Domain(i)), s.store.Render(i))
	}
}

// watchRec is one observed write, stamped with the owning operation.
type watchRec struct {
	mach.WatchedStore
	Op  string
	Raw bool
}

// collector gathers every write overlapping [lo, lo+n) during a
// re-execution: program stores via the machine watch seam, hardware
// writes via the bus raw watch, operation attribution via the event
// stream.
type collector struct {
	buf   *trace.Buffer
	lo    uint32
	n     int
	curOp string
	recs  []watchRec
}

func (c *collector) HandleEvent(e trace.Event) {
	if e.Kind == trace.EvOpActivate {
		c.curOp = c.buf.Name(e.Arg)
	}
}

func (c *collector) overlaps(addr uint32, size int) bool {
	return addr < c.lo+uint32(c.n) && addr+uint32(size) > c.lo
}

func (c *collector) bind(m *mach.Machine) {
	m.SetStoreWatch(func(ws mach.WatchedStore) {
		if c.overlaps(ws.Addr, ws.Size) {
			c.recs = append(c.recs, watchRec{WatchedStore: ws, Op: c.curOp})
		}
	})
	m.Bus.SetRawWatch(func(addr uint32, size int, val uint32) {
		if c.overlaps(addr, size) {
			c.recs = append(c.recs, watchRec{
				WatchedStore: mach.WatchedStore{
					Cycle: m.Clock.Now(), Instr: m.InstrCount,
					Addr: addr, Size: size, Val: val, Privileged: true, Region: -2,
				},
				Op: c.curOp, Raw: true,
			})
		}
	})
}

// collect re-executes the run with a write collector over [addr,
// addr+n) and returns the observed records in execution order.
func (s *Session) collect(addr uint32, n int) ([]watchRec, error) {
	buf := trace.NewBuffer(s.cfg.TraceCap)
	col := &collector{buf: buf, lo: addr, n: n, curOp: "?"}
	buf.Attach(col)
	if _, _, _, err := s.execute(buf, col.bind); err != nil {
		return nil, err
	}
	return col.recs, nil
}

// renderRec formats one write record deterministically.
func (s *Session) renderRec(r watchRec) string {
	loc := "(hardware)"
	if r.Raw {
		loc = "(raw)"
	} else if r.Fn != "" {
		loc = fmt.Sprintf("fn=%s pc=%#08x", r.Fn, r.PC)
	}
	verdict := "landed"
	switch {
	case r.Denied:
		verdict = fmt.Sprintf("DENIED %v", r.FaultKind)
	case r.Raw:
		verdict = "landed (below protection unit)"
	case r.Proven:
		verdict = "landed (certified)"
	case r.Region >= -1:
		verdict = fmt.Sprintf("landed region=%d", r.Region)
	}
	name, off := s.GlobalAt(r.Addr)
	target := fmt.Sprintf("%#08x", r.Addr)
	if name != "" {
		target = fmt.Sprintf("%#08x (%s+%d)", r.Addr, name, off)
	}
	return fmt.Sprintf("cycle=%-10d op=%-12s %-32s store %s size=%d value=%#x priv=%v %s",
		r.Cycle, r.Op, loc, target, r.Size, r.Val, r.Privileged, verdict)
}

// Watch reports every write attempt overlapping [addr, addr+n) in the
// cycle range [from, to] (to == 0 means end of run), with the PC,
// operation and protection verdict of each — the data-watchpoint
// query.
func (s *Session) Watch(addr uint32, n int, from, to uint64) (string, error) {
	return s.timed(func() (string, error) {
		recs, err := s.collect(addr, n)
		if err != nil {
			return "", err
		}
		if to == 0 {
			to = ^uint64(0)
		}
		var b strings.Builder
		name, off := s.GlobalAt(addr)
		at := fmt.Sprintf("%#08x", addr)
		if name != "" {
			at = fmt.Sprintf("%#08x (%s+%d)", addr, name, off)
		}
		total := 0
		for _, r := range recs {
			if r.Cycle < from || r.Cycle > to {
				continue
			}
			if total == 0 {
				fmt.Fprintf(&b, "watch %s len=%d:\n", at, n)
			}
			total++
			fmt.Fprintf(&b, "  %s\n", s.renderRec(r))
		}
		if total == 0 {
			fmt.Fprintf(&b, "watch %s len=%d: no writes in cycle range\n", at, n)
		} else {
			fmt.Fprintf(&b, "  %d write attempts\n", total)
		}
		return b.String(), nil
	})
}

// LastWriter answers the backward slice: the last write that LANDED on
// [addr, addr+n) at or before cycle c, plus any later denied attempt —
// "who produced the value this address held at cycle c".
func (s *Session) LastWriter(addr uint32, n int, c uint64) (string, error) {
	return s.timed(func() (string, error) {
		recs, err := s.collect(addr, n)
		if err != nil {
			return "", err
		}
		var last, denied *watchRec
		for i := range recs {
			r := &recs[i]
			if r.Cycle > c {
				break
			}
			if r.Denied {
				denied = r
			} else {
				last = r
			}
		}
		name, off := s.GlobalAt(addr)
		at := fmt.Sprintf("%#08x", addr)
		if name != "" {
			at = fmt.Sprintf("%#08x (%s+%d)", addr, name, off)
		}
		var b strings.Builder
		fmt.Fprintf(&b, "last-writer %s at cycle %d:\n", at, c)
		if last == nil {
			fmt.Fprintf(&b, "  no write landed by cycle %d (boot-image value)\n", c)
		} else {
			fmt.Fprintf(&b, "  %s\n", s.renderRec(*last))
		}
		if denied != nil && (last == nil || denied.Cycle >= last.Cycle) {
			fmt.Fprintf(&b, "  later denied attempt:\n  %s\n", s.renderRec(*denied))
		}
		return b.String(), nil
	})
}

// Blame walks a fault event back to the store that caused it: it finds
// the fault (the first one at or after cycle c; c == 0 means the fault
// the monitor's first recovery handled, or failing any recovery the
// run's first fault), re-executes with a watchpoint on the faulting
// address, and names the attempt — for a denied write, the rogue
// store's PC, function, operation and value (the §6.1 KEY-overwrite
// forensics); for other faults, the last landed writer of the address.
func (s *Session) Blame(c uint64) (string, error) {
	return s.timed(func() (string, error) { return s.blame(c) })
}

func (s *Session) blame(c uint64) (string, error) {
	idx := -1
	if c == 0 {
		i, err := s.incidentFault()
		if err != nil {
			return "", err
		}
		idx = i
	} else {
		for _, i := range s.store.ByKind(trace.EvFault) {
			if s.store.Event(i).Cycle >= c {
				idx = i
				break
			}
		}
		if idx < 0 {
			return "", fmt.Errorf("debug: no fault event at or after cycle %d", c)
		}
	}
	ev := s.store.Event(idx)
	kind, write, region := trace.UnpackFaultInfo(ev.Arg2)
	addr := ev.Arg

	var b strings.Builder
	name, off := s.GlobalAt(addr)
	at := fmt.Sprintf("%#08x", addr)
	if name != "" {
		at = fmt.Sprintf("%#08x (%s+%d)", addr, name, off)
	}
	dir := "read"
	if write {
		dir = "write"
	}
	fmt.Fprintf(&b, "blame: fault at cycle %d in op %s: %v %s %s region=%d\n",
		ev.Cycle, s.store.DomainName(s.store.Domain(idx)), mach.FaultKind(kind), dir, at, region)

	recs, err := s.collect(addr, 1)
	if err != nil {
		return "", err
	}
	var culprit *watchRec
	if write {
		// The denied attempt at the fault's own cycle IS the rogue store.
		for i := range recs {
			r := &recs[i]
			if r.Denied && r.Cycle == ev.Cycle {
				culprit = r
				break
			}
		}
	}
	if culprit == nil {
		// Read faults (or an unmatched write): blame whoever last put a
		// value there before the fault.
		for i := range recs {
			r := &recs[i]
			if r.Cycle > ev.Cycle {
				break
			}
			if !r.Denied {
				culprit = r
			}
		}
	}
	if culprit == nil {
		fmt.Fprintf(&b, "  no write to %s observed before the fault (boot-image value)\n", at)
	} else {
		fmt.Fprintf(&b, "  rogue store: %s\n", s.renderRec(*culprit))
	}

	// What happened next: the first recovery event after the fault.
	for _, i := range s.store.ByKind(trace.EvRecovery) {
		if e := s.store.Event(i); e.Cycle >= ev.Cycle {
			fmt.Fprintf(&b, "  then: %s\n", strings.TrimSpace(s.store.Render(i)))
			break
		}
	}
	return b.String(), nil
}

// Info summarizes the recording: outcome, stream shape, keyframes, and
// the replay coordinate a spec run can be re-debugged from.
func (s *Session) Info() string {
	var b strings.Builder
	fmt.Fprintf(&b, "session: %s backend=%s\n", s.cfg.App.Name, s.backendName())
	if s.Outcome != nil {
		fmt.Fprintf(&b, "  trial: %s\n  verdict: %s\n", s.Outcome.Spec, s.Outcome.Verdict)
		if s.Outcome.Err != "" {
			fmt.Fprintf(&b, "  detail: %s\n", s.Outcome.Err)
		}
		fmt.Fprintf(&b, "  replay: %s@%s\n", s.SnapshotID(), s.Outcome.Spec)
	} else {
		fmt.Fprintf(&b, "  clean run, snapshot %s\n", s.SnapshotID())
		if s.RunErr != "" {
			fmt.Fprintf(&b, "  run error: %s\n", s.RunErr)
		}
	}
	fmt.Fprintf(&b, "  cycles: %d\n", s.Cycles)
	fmt.Fprintf(&b, "  events: %d (ring dropped %d)\n", s.store.Len(), s.store.Dropped())
	fmt.Fprintf(&b, "  indexes: %d kinds, %d domains\n", s.store.KindBuckets(), s.store.DomainBuckets())
	b.WriteString(s.keys.Render())
	return b.String()
}

// incidentFault picks the default fault to investigate: the incident,
// not boot noise. Workloads tolerate benign faults (HAL pokes at
// privileged peripherals during init), so when the monitor recovered
// something, the target is the fault its first recovery responded to;
// otherwise the run's first fault.
func (s *Session) incidentFault() (int, error) {
	faults := s.store.ByKind(trace.EvFault)
	if len(faults) == 0 {
		return 0, fmt.Errorf("debug: no fault events in the recording")
	}
	idx := faults[0]
	if recs := s.store.ByKind(trace.EvRecovery); len(recs) > 0 {
		rc := s.store.Event(recs[0]).Cycle
		for _, i := range faults {
			if s.store.Event(i).Cycle > rc {
				break
			}
			idx = i
		}
	}
	return idx, nil
}

// FaultCycle returns the cycle of the recording's incident fault (the
// one blame targets by default) — the `seek fault` resolution.
func (s *Session) FaultCycle() (uint64, error) {
	idx, err := s.incidentFault()
	if err != nil {
		return 0, err
	}
	return s.store.Event(idx).Cycle, nil
}

// Coordinate returns the '<snapid>@<spec>' replay coordinate of a spec
// session ("" for clean runs) — what `opec-debug -replay` accepts.
func (s *Session) Coordinate() string {
	if s.Outcome == nil {
		return ""
	}
	return fmt.Sprintf("%s@%s", s.SnapshotID(), s.Outcome.Spec)
}

func (s *Session) backendName() string {
	if s.cfg.Backend == "" {
		return "interp"
	}
	return s.cfg.Backend
}

// VerifyKeyframes re-executes the run once and proves every held
// keyframe's digest is reproduced at its stream position — the
// keyframe-restore equivalence check the workload sweep test runs on
// all seven workloads.
func (s *Session) VerifyKeyframes() error {
	frames := s.keys.Frames()
	vers := make([]*verifier, len(frames))
	buf := trace.NewBuffer(s.cfg.TraceCap)
	for i, kf := range frames {
		vers[i] = &verifier{target: kf.Event}
		buf.Attach(vers[i])
	}
	if _, _, _, err := s.execute(buf, func(m *mach.Machine) {
		for i, kf := range frames {
			vers[i].bind(m, kf.Reason == "boot")
		}
	}); err != nil {
		return err
	}
	for i, kf := range frames {
		if vers[i].digest == "" {
			return fmt.Errorf("debug: keyframe %d (event %d) never reached on re-execution", i, kf.Event)
		}
		if vers[i].digest != kf.State.Digest() {
			return fmt.Errorf("debug: keyframe %d (cycle %d, event %d, %s): replayed state %s != captured %s",
				i, kf.Cycle, kf.Event, kf.Reason, vers[i].digest, kf.State.Digest())
		}
	}
	return nil
}
