package debug

import (
	"fmt"

	"opec/internal/mach"
	"opec/internal/trace"
)

// Keyframer is the checkpointer: a trace.Handler that captures mid-run
// copy-on-write state frames (mach.CaptureState) every Every cycles
// and at the stream's causally interesting events — gate entries,
// faults, recoveries — plus one boot frame at the arming point. Memory
// is bounded: past Max frames the set is decimated (every second
// non-boot frame released, the interval stride doubled), so a long run
// degrades keyframe density, never footprint.
type Keyframer struct {
	// Every is the cycle interval between periodic keyframes; Max
	// bounds how many frames are held before decimation. Both must be
	// set before Bind.
	Every uint64
	Max   int

	m       *mach.Machine
	n       int // events seen on the stream so far
	next    uint64
	stride  uint64
	frames  []*Keyframe
	evicted uint64
}

// Keyframe is one checkpoint: the captured state, its position in the
// event stream, and why it was taken.
type Keyframe struct {
	Cycle uint64
	// Event is the stream position: the index of the event at whose
	// emission the frame was captured ("boot" frames: the index the
	// next event will get). The seek suffix comparison starts here, and
	// the replay digest check fires at exactly this index.
	Event  int
	Reason string // "boot" | "interval" | "gate" | "fault" | "recovery"
	State  *mach.StateFrame
}

// Bind attaches the machine and captures the boot keyframe. Called
// from the run's observer hook (after restore and arming, before
// execution) — the same point a re-execution's verifier binds at, so
// boot-frame digests compare at identical machine states.
func (k *Keyframer) Bind(m *mach.Machine) {
	k.m = m
	k.stride = k.Every
	if k.stride == 0 {
		k.stride = DefaultKeyframeEvery
	}
	if k.Max == 0 {
		k.Max = DefaultMaxKeyframes
	}
	k.capture(m.Clock.Now(), k.n, "boot")
}

// HandleEvent counts stream position and captures on triggers
// (trace.Handler). Events arriving before Bind — a recording always
// attaches its handlers before the run boots its observer — only
// advance the position counter.
func (k *Keyframer) HandleEvent(e trace.Event) {
	idx := k.n
	k.n++
	if k.m == nil {
		return
	}
	reason := ""
	switch e.Kind {
	case trace.EvGateEnter:
		reason = "gate"
	case trace.EvFault:
		reason = "fault"
	case trace.EvRecovery:
		reason = "recovery"
	default:
		if e.Cycle >= k.next {
			reason = "interval"
		}
	}
	if reason == "" {
		return
	}
	k.capture(e.Cycle, idx, reason)
}

// capture appends a frame and enforces the memory bound.
func (k *Keyframer) capture(cycle uint64, idx int, reason string) {
	k.frames = append(k.frames, &Keyframe{
		Cycle: cycle, Event: idx, Reason: reason, State: k.m.CaptureState(),
	})
	k.next = cycle + k.stride
	for k.Max > 1 && len(k.frames) > k.Max {
		k.decimate()
	}
}

// decimate releases every second non-boot frame and doubles the
// stride — deterministic eviction that keeps the boot anchor and halves
// density uniformly across the run so far.
func (k *Keyframer) decimate() {
	kept := k.frames[:1] // the boot frame anchors every seek
	for i := 1; i < len(k.frames); i++ {
		if (i-1)%2 == 1 {
			kept = append(kept, k.frames[i])
		} else {
			k.frames[i].State.Release()
			k.evicted++
		}
	}
	k.frames = append([]*Keyframe(nil), kept...)
	k.stride *= 2
	k.next = k.frames[len(k.frames)-1].Cycle + k.stride
}

// Nearest returns the latest keyframe with Cycle <= c, falling back to
// the boot frame (which exists after Bind).
func (k *Keyframer) Nearest(c uint64) *Keyframe {
	best := k.frames[0]
	for _, f := range k.frames[1:] {
		if f.Cycle <= c {
			best = f
		}
	}
	return best
}

// Frames returns the held keyframes in capture order.
func (k *Keyframer) Frames() []*Keyframe { return k.frames }

// Render lists the keyframes deterministically.
func (k *Keyframer) Render() string {
	var b []byte
	b = fmt.Appendf(b, "keyframes: %d held, %d evicted, stride %d cycles\n",
		len(k.frames), k.evicted, k.stride)
	for i, f := range k.frames {
		b = fmt.Appendf(b, "  #%-3d cycle=%-10d event=%-6d %-8s state=%s\n",
			i, f.Cycle, f.Event, f.Reason, f.State.Digest())
	}
	return string(b)
}

// Counters exposes checkpointer observability (trace.CounterSource).
func (k *Keyframer) Counters() []trace.Counter {
	return []trace.Counter{
		{Name: "debug.keyframes.held", Value: uint64(len(k.frames))},
		{Name: "debug.keyframes.evicted", Value: k.evicted},
		{Name: "debug.keyframes.stride", Value: k.stride},
	}
}
