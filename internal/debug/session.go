package debug

import (
	"fmt"
	"time"

	"opec/internal/apps"
	"opec/internal/core"
	"opec/internal/inject"
	"opec/internal/ir"
	"opec/internal/mach"
	"opec/internal/monitor"
	"opec/internal/run"
	"opec/internal/trace"
)

// Default checkpointer shape.
const (
	DefaultKeyframeEvery = 2000 // cycles between periodic keyframes
	DefaultMaxKeyframes  = 64   // held frames before decimation
)

// Config describes one debuggable run.
type Config struct {
	App *apps.App

	// Spec, when non-nil, debugs a fault-injection / fuzzing trial
	// instead of a clean run. WantSnapID, when set, must match the
	// rebuilt boot checkpoint's id — the '<snapid>@<spec>' replay
	// coordinate verification.
	Spec       *inject.Spec
	WantSnapID string

	Policy    monitor.Policy
	MaxCycles uint64
	Backend   string // "" = interpreter (run.BackendInterp)

	KeyframeEvery uint64 // 0 = DefaultKeyframeEvery
	MaxKeyframes  int    // 0 = DefaultMaxKeyframes
	TraceCap      int    // recording ring capacity (0 = trace default)
}

// Session is one recorded, queryable run. New boots the workload under
// OPEC, records the run once with the checkpointer and indexed store
// attached, and keeps the boot checkpoint alive so every query can
// re-execute the byte-identical run with its own observers.
type Session struct {
	cfg Config

	forge *inject.Forge    // spec runs (nil for clean runs)
	ctx   *run.OPECContext // clean runs (nil for spec runs)
	m     *mach.Machine    // the booted machine (symbol resolution)

	store *Store
	keys  *Keyframer

	// Recorded outcome.
	Outcome *inject.Outcome // spec runs
	RunErr  string          // clean runs: the run error text, if any
	Cycles  uint64

	queries, queryNS, reexecs uint64
}

// New boots cfg's workload and records its run.
func New(cfg Config) (*Session, error) {
	if cfg.App == nil {
		return nil, fmt.Errorf("debug: no workload")
	}
	s := &Session{cfg: cfg}
	if cfg.Spec != nil {
		forge, err := inject.NewForge(cfg.App)
		if err != nil {
			return nil, err
		}
		forge.Backend = cfg.Backend
		s.forge = forge
	} else {
		inst := cfg.App.New()
		b, err := core.Compile(inst.Mod, inst.Board, inst.Cfg)
		if err != nil {
			return nil, fmt.Errorf("debug: compile %s: %w", cfg.App.Name, err)
		}
		ctx, err := run.BootOPEC(inst, b)
		if err != nil {
			return nil, fmt.Errorf("debug: boot %s: %w", cfg.App.Name, err)
		}
		s.ctx = ctx
	}
	if cfg.WantSnapID != "" && s.SnapshotID() != cfg.WantSnapID {
		return nil, fmt.Errorf("debug: snapshot id mismatch: rebuilt checkpoint is %s, coordinate names %s (different workload scale or build?)",
			s.SnapshotID(), cfg.WantSnapID)
	}
	if err := s.record(); err != nil {
		return nil, err
	}
	return s, nil
}

// SnapshotID identifies the boot checkpoint every execution forks
// from; with the spec it forms the replay coordinate.
func (s *Session) SnapshotID() string {
	if s.forge != nil {
		return s.forge.SnapshotID()
	}
	return s.ctx.SnapshotID()
}

// record performs the one recorded run: indexed store + checkpointer
// attached, machine captured for symbol resolution.
func (s *Session) record() error {
	buf := trace.NewBuffer(s.cfg.TraceCap)
	s.store = NewStore(buf)
	s.keys = &Keyframer{Every: s.cfg.KeyframeEvery, Max: s.cfg.MaxKeyframes}
	buf.Attach(s.keys)
	cycles, runErr, out, err := s.execute(buf, func(m *mach.Machine) {
		s.m = m
		s.keys.Bind(m)
	})
	if err != nil {
		return err
	}
	s.Cycles, s.RunErr, s.Outcome = cycles, runErr, out
	return s.store.Finish()
}

// execute performs one deterministic execution of the configured run
// with buf attached and observe bound at the arming point. Every call
// replays the byte-identical event stream — the fork-engine invariant
// the whole debugger rests on.
func (s *Session) execute(buf *trace.Buffer, observe func(*mach.Machine)) (cycles uint64, runErr string, out *inject.Outcome, err error) {
	s.reexecs++
	if s.forge != nil {
		o, ferr := s.forge.ObservedRun(*s.cfg.Spec, s.cfg.Policy, s.cfg.MaxCycles, buf, false, observe)
		if ferr != nil {
			return 0, "", nil, ferr
		}
		return o.Cycles, o.Err, &o, nil
	}
	res, rerr := s.ctx.Fork(run.Options{
		Policy:    s.cfg.Policy,
		MaxCycles: s.cfg.MaxCycles,
		Backend:   s.cfg.Backend,
		Trace:     buf,
		Arm:       observe,
	})
	if rerr != nil {
		runErr = rerr.Error()
	}
	if res != nil {
		cycles = res.Cycles
	}
	return cycles, runErr, nil, nil
}

// Store exposes the recording's indexed trace store.
func (s *Session) Store() *Store { return s.store }

// Keyframes exposes the recording's checkpointer.
func (s *Session) Keyframes() *Keyframer { return s.keys }

// ResolveGlobal resolves a global's address and size through the booted
// machine's privileged view — the public original, the address a
// MemManage fault on an unprivileged foreign write reports.
func (s *Session) ResolveGlobal(name string) (uint32, int, error) {
	mod := s.instMod()
	g := mod.Global(name)
	if g == nil {
		return 0, 0, fmt.Errorf("debug: no global %q", name)
	}
	addr, f := s.m.GlobalAddr(g, true)
	if f != nil {
		return 0, 0, fmt.Errorf("debug: resolving %q: %w", name, f)
	}
	return addr, g.Size(), nil
}

// GlobalAt names the global covering addr, with the byte offset into
// it, or "" when no global covers it.
func (s *Session) GlobalAt(addr uint32) (string, uint32) {
	for _, g := range s.instMod().Globals {
		base, f := s.m.GlobalAddr(g, true)
		if f != nil {
			continue
		}
		if addr >= base && addr < base+uint32(g.Size()) {
			return g.Name, addr - base
		}
	}
	return "", 0
}

func (s *Session) instMod() *ir.Module {
	if s.forge != nil {
		return s.forge.Instance().Mod
	}
	return s.ctx.Inst.Mod
}

// timed wraps one query for the debug_* counters.
func (s *Session) timed(fn func() (string, error)) (string, error) {
	start := time.Now()
	out, err := fn()
	s.queries++
	s.queryNS += uint64(time.Since(start).Nanoseconds())
	return out, err
}

// Counters aggregates the debugger's own observability — query count
// and timing, re-executions, index sizes, checkpointer state — as one
// trace.CounterSource for the unified registry.
func (s *Session) Counters() []trace.Counter {
	cs := []trace.Counter{
		{Name: "debug.queries", Value: s.queries},
		{Name: "debug.query_ns", Value: s.queryNS},
		{Name: "debug.reexecs", Value: s.reexecs},
	}
	cs = append(cs, s.store.Counters()...)
	cs = append(cs, s.keys.Counters()...)
	return cs
}
