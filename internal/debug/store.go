// Package debug is the time-travel debugger over the simulator's
// deterministic replay substrate. It records one run — clean, or any
// inject/fuzz finding named by its replay spec — into an indexed trace
// store with keyframe state checkpoints, and then answers causal
// queries about it: seek to a cycle (re-execute from the boot
// checkpoint, verify the regenerated stream against the recording and
// the keyframe digest), data watchpoints over any address range,
// last-writer backward slices, and blame (walk a fault back to the
// rogue store that caused it — the §6.1 KEY-overwrite forensics as one
// command).
//
// The design leans on two established invariants rather than fighting
// the machine's host-stack activation records:
//
//   - Forked trials are byte-identical (run.OPECContext / inject.Forge),
//     so "restore and re-execute forward" is implemented as replay from
//     the boot checkpoint with fresh observers attached — every query
//     sees exactly the recorded run.
//   - Keyframes are mid-run mach.StateFrame captures (copy-on-write,
//     no quiescence requirement); a seek proves the replay passed
//     through the keyframe by comparing live StateDigest against the
//     frame at the same event-stream position, then byte-compares the
//     rendered trace suffix from the keyframe on.
package debug

import (
	"fmt"

	"opec/internal/trace"
)

// Store is the indexed trace store: the complete event stream of one
// recorded run (ingested pre-drop via the streaming handler interface,
// so ring wrap loses nothing), indexed per kind, per domain and per
// cycle, with the ring's exact drop count preserved as recording
// metadata.
type Store struct {
	buf *trace.Buffer // name table + renderer for the recorded stream

	events  []trace.Event
	domains []int32 // owning domain per event (active op at emission; -1 pre-activation)
	opNames map[int32]string

	byKind   map[trace.Kind][]int
	byDomain map[int32][]int

	curOp       int32
	lastCycle   uint64
	regressions uint64
	dropped     uint64
	finished    bool
}

// NewStore attaches a fresh store to buf's live stream. Everything
// emitted after this call is ingested.
func NewStore(buf *trace.Buffer) *Store {
	st := &Store{buf: buf, opNames: map[int32]string{}, curOp: -1}
	buf.Attach(st)
	return st
}

// HandleEvent ingests one event (trace.Handler).
func (st *Store) HandleEvent(e trace.Event) {
	if e.Cycle < st.lastCycle {
		st.regressions++
	} else {
		st.lastCycle = e.Cycle
	}
	if e.Kind == trace.EvOpActivate {
		st.curOp = e.Op
		if _, ok := st.opNames[e.Op]; !ok {
			st.opNames[e.Op] = st.buf.Name(e.Arg)
		}
	}
	st.events = append(st.events, e)
	st.domains = append(st.domains, st.curOp)
}

// Finish seals the recording: builds the kind/domain indexes and
// asserts stream health. A non-monotonic stream is refused — the
// per-cycle binary search would misresolve on it, and monotonicity is
// an invariant of any correctly attached run (see
// trace.Buffer.CycleRegressions).
func (st *Store) Finish() error {
	if st.regressions > 0 {
		return fmt.Errorf("debug: recorded stream is non-monotonic (%d cycle regressions): a restored machine emitted into a stale buffer", st.regressions)
	}
	st.byKind = map[trace.Kind][]int{}
	st.byDomain = map[int32][]int{}
	for i, e := range st.events {
		st.byKind[e.Kind] = append(st.byKind[e.Kind], i)
		st.byDomain[st.domains[i]] = append(st.byDomain[st.domains[i]], i)
	}
	st.dropped = st.buf.Dropped()
	st.finished = true
	return nil
}

// Len returns the number of recorded events.
func (st *Store) Len() int { return len(st.events) }

// Dropped returns how many events the recording ring overwrote. The
// store itself is complete (handlers run pre-drop); the count is kept
// so reports preserve the ring's exact accounting.
func (st *Store) Dropped() uint64 { return st.dropped }

// Event returns event i.
func (st *Store) Event(i int) trace.Event { return st.events[i] }

// Domain returns the id of the operation that owned event i (-1 before
// the first activation).
func (st *Store) Domain(i int) int32 { return st.domains[i] }

// DomainName resolves a domain id recorded by the stream.
func (st *Store) DomainName(id int32) string {
	if n, ok := st.opNames[id]; ok {
		return n
	}
	return "?"
}

// ByKind returns the indexes of every event of kind k, in stream order.
func (st *Store) ByKind(k trace.Kind) []int { return st.byKind[k] }

// KindBuckets returns how many kinds have at least one event.
func (st *Store) KindBuckets() int { return len(st.byKind) }

// DomainBuckets returns how many domains own at least one event.
func (st *Store) DomainBuckets() int { return len(st.byDomain) }

// IndexAt returns the index of the last event with Cycle <= c, or -1
// when the stream starts after c. Binary search over the monotonic
// stream — this is what Finish's monotonicity assertion protects.
func (st *Store) IndexAt(c uint64) int {
	lo, hi := 0, len(st.events) // invariant: events[:lo] <= c < events[hi:]
	for lo < hi {
		mid := (lo + hi) / 2
		if st.events[mid].Cycle <= c {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// LastCycle returns the final event's cycle stamp (0 for an empty
// recording).
func (st *Store) LastCycle() uint64 {
	if len(st.events) == 0 {
		return 0
	}
	return st.events[len(st.events)-1].Cycle
}

// Render formats event i in the deterministic text-line format.
func (st *Store) Render(i int) string { return st.buf.RenderEvent(st.events[i]) }

// RenderRange renders events [i, j) one per line — the byte-identity
// unit seek compares between the recording and a re-execution.
func (st *Store) RenderRange(i, j int) string {
	var b []byte
	for ; i < j; i++ {
		b = append(b, st.Render(i)...)
		b = append(b, '\n')
	}
	return string(b)
}

// Counters exposes the store's index sizes (trace.CounterSource).
func (st *Store) Counters() []trace.Counter {
	return []trace.Counter{
		{Name: "debug.store.events", Value: uint64(len(st.events))},
		{Name: "debug.store.dropped", Value: st.dropped},
		{Name: "debug.store.kind_buckets", Value: uint64(len(st.byKind))},
		{Name: "debug.store.domain_buckets", Value: uint64(len(st.byDomain))},
	}
}
