package exper_test

// Repeat-compile determinism: pointer-keyed maps are pervasive in the
// compiler (layout classification, relocation slots, dependency sets),
// and Go randomizes map iteration order, so any order leak into an
// address, a relocation slot or a policy byte shows up as two fresh
// compiles of the same workload disagreeing. These tests compile every
// workload twice from fresh instances and require the serialized
// isolation policy (OPEC) and a structural fingerprint (ACES) to be
// byte-identical.

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"opec/internal/aces"
	"opec/internal/core"
	"opec/internal/exper"
)

func TestRepeatCompileDeterminismOPEC(t *testing.T) {
	for _, app := range exper.AppsFor(exper.Quick) {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			var policies [2][]byte
			for i := range policies {
				inst := app.New()
				b, err := core.Compile(inst.Mod, inst.Board, inst.Cfg)
				if err != nil {
					t.Fatal(err)
				}
				policies[i], err = b.PolicyJSON()
				if err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(policies[0], policies[1]) {
				t.Errorf("two fresh compiles produced different policy bytes:\n--- first ---\n%s\n--- second ---\n%s",
					policies[0], policies[1])
			}
		})
	}
}

// acesFingerprint serializes the determinism-relevant surface of an
// ACES build: compartments (members, privilege, peripheral window),
// variable groups, and every global's placed address.
func acesFingerprint(b *aces.Build) string {
	var sb strings.Builder
	for _, c := range b.Comps {
		fmt.Fprintf(&sb, "comp %d %q priv=%v", c.ID, c.Name, c.Privileged)
		if w := c.PeriphWindow; w != nil {
			fmt.Fprintf(&sb, " window=%#x+%d", w.Base, uint64(1)<<w.SizeLog2)
		}
		sb.WriteByte('\n')
		for _, f := range c.Funcs {
			fmt.Fprintf(&sb, "  fn %s\n", f.Name)
		}
		for _, gr := range c.Groups {
			fmt.Fprintf(&sb, "  group %d\n", gr.ID)
		}
	}
	for _, gr := range b.Groups {
		fmt.Fprintf(&sb, "group %d sect=%#x\n", gr.ID, gr.Section().Addr)
		for _, v := range gr.Vars {
			fmt.Fprintf(&sb, "  var %s\n", v.Name)
		}
	}
	type placed struct {
		name string
		addr uint32
	}
	var ps []placed
	for g, a := range b.GlobalAddr {
		ps = append(ps, placed{g.Name, a})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].name < ps[j].name })
	for _, p := range ps {
		fmt.Fprintf(&sb, "addr %s=%#x\n", p.name, p.addr)
	}
	fmt.Fprintf(&sb, "flash=%d sram=%d\n", b.FlashUsed, b.SRAMUsed)
	return sb.String()
}

func TestRepeatCompileDeterminismACES(t *testing.T) {
	for _, app := range exper.AppsFor(exper.Quick)[:5] {
		for _, strat := range exper.Strategies {
			app, strat := app, strat
			t.Run(fmt.Sprintf("%s/%v", app.Name, strat), func(t *testing.T) {
				var prints [2]string
				for i := range prints {
					inst := app.New()
					b, err := aces.Compile(inst.Mod, inst.Board, strat)
					if err != nil {
						t.Fatal(err)
					}
					prints[i] = acesFingerprint(b)
				}
				if prints[0] != prints[1] {
					t.Errorf("two fresh compiles produced different layouts:\n--- first ---\n%s\n--- second ---\n%s",
						prints[0], prints[1])
				}
			})
		}
	}
}
