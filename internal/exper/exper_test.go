package exper_test

import (
	"strings"
	"testing"

	"opec/internal/exper"
)

func TestTable1(t *testing.T) {
	rows, err := exper.Table1(exper.Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 7 apps + average
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows[:7] {
		if r.Ops < 6 || r.Ops > 11 {
			t.Errorf("%s: #OPs = %d out of the paper's band", r.App, r.Ops)
		}
		if r.PriCode < 8000 || r.PriCode > 9500 {
			t.Errorf("%s: PriCode = %d outside the ~8.2-8.7KB band", r.App, r.PriCode)
		}
		if r.AvgGVarsPct <= 0 || r.AvgGVarsPct > 100 {
			t.Errorf("%s: AvgGVarsPct = %.2f", r.App, r.AvgGVarsPct)
		}
		if r.AvgFuncs <= 1 {
			t.Errorf("%s: AvgFuncs = %.2f", r.App, r.AvgFuncs)
		}
	}
	// Shape: the isolation confines operations to a strict subset of
	// the globals on average.
	if avg := rows[7]; avg.AvgGVarsPct >= 100 {
		t.Errorf("average accessible globals not reduced: %.2f%%", avg.AvgGVarsPct)
	}
	out := exper.RenderTable1(rows)
	if !strings.Contains(out, "PinLock") || !strings.Contains(out, "Average") {
		t.Error("render output incomplete")
	}
}

func TestFigure9(t *testing.T) {
	rows, err := exper.Figure9(exper.Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows[:7] {
		if r.RuntimePct < 0 {
			t.Errorf("%s: negative runtime overhead %.2f%%", r.App, r.RuntimePct)
		}
		if r.RuntimePct > 60 {
			t.Errorf("%s: runtime overhead %.2f%% unreasonably high", r.App, r.RuntimePct)
		}
		if r.FlashPct <= 0 || r.FlashPct > 10 {
			t.Errorf("%s: flash overhead %.2f%%", r.App, r.FlashPct)
		}
		if r.SRAMPct <= 0 || r.SRAMPct > 20 {
			t.Errorf("%s: SRAM overhead %.2f%%", r.App, r.SRAMPct)
		}
	}
	out := exper.RenderFigure9(rows)
	if !strings.Contains(out, "Runtime%") {
		t.Error("render output incomplete")
	}
}

func TestTable2(t *testing.T) {
	rows, err := exper.Table2(exper.Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5*4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.RO < 1.0 {
			t.Errorf("%s/%s: RO %.3f < 1", r.App, r.Policy, r.RO)
		}
		if r.Policy == "OPEC" && r.PAC != 0 {
			t.Errorf("%s: OPEC PAC = %.2f, must be 0", r.App, r.PAC)
		}
	}
	// Shape check: OPEC keeps application code unprivileged everywhere;
	// at least one ACES policy somewhere must lift code (PinLock and
	// friends do not touch the PPB, so PAC can be 0 for all — accept
	// either, but the columns must render).
	out := exper.RenderTable2(rows)
	if !strings.Contains(out, "ACES-3") || !strings.Contains(out, "OPEC") {
		t.Error("render output incomplete")
	}
}

func TestFigure10(t *testing.T) {
	series, err := exper.Figure10(exper.Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5*4 { // 3 ACES strategies + OPEC per app
		t.Fatalf("series = %d", len(series))
	}
	sawOverPrivilege := false
	for _, s := range series {
		if len(s.CDF) != len(exper.Figure10Thresholds) {
			t.Fatalf("%s/%s: CDF length %d", s.App, s.Strategy, len(s.CDF))
		}
		// CDF is monotonically nondecreasing and ends at 1.
		for i := 1; i < len(s.CDF); i++ {
			if s.CDF[i] < s.CDF[i-1] {
				t.Errorf("%s/%s: CDF not monotone", s.App, s.Strategy)
			}
		}
		if s.CDF[len(s.CDF)-1] != 1 {
			t.Errorf("%s/%s: CDF does not reach 1", s.App, s.Strategy)
		}
		if s.Strategy == "OPEC" {
			for _, pt := range s.PTs {
				if pt != 0 {
					t.Errorf("%s: OPEC PT %.3f != 0", s.App, pt)
				}
			}
		} else {
			for _, pt := range s.PTs {
				if pt > 0 {
					sawOverPrivilege = true
				}
			}
		}
	}
	if !sawOverPrivilege {
		t.Error("no ACES series shows partition-time over-privilege; Figure 10's contrast is lost")
	}
}

func TestFigure11(t *testing.T) {
	series, err := exper.Figure11(exper.Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 5*4 {
		t.Fatalf("series = %d", len(series))
	}
	type key struct{ app, strat string }
	avg := make(map[key]float64)
	for _, s := range series {
		sum := 0.0
		for _, et := range s.ET {
			if et < 0 || et > 1 {
				t.Fatalf("%s/%s: ET %v out of range", s.App, s.Strategy, et)
			}
			sum += et
		}
		if len(s.ET) > 0 {
			avg[key{s.App, s.Strategy}] = sum / float64(len(s.ET))
		}
	}
	// Shape: averaged over the five apps, OPEC's mean ET must not
	// exceed ACES2's (code-module partitioning drags in more code).
	var opec, aces2 float64
	for k, v := range avg {
		switch k.strat {
		case "OPEC":
			opec += v
		case "ACES2":
			aces2 += v
		}
	}
	if opec > aces2+0.5 {
		t.Errorf("mean ET: OPEC %.3f much worse than ACES2 %.3f", opec/5, aces2/5)
	}
}

func TestTable3(t *testing.T) {
	rows, err := exper.Table3(exper.Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.SVF+r.TypeBased+r.Unresolved != r.ICalls {
			t.Errorf("%s: icall accounting %d+%d+%d != %d", r.App, r.SVF, r.TypeBased, r.Unresolved, r.ICalls)
		}
	}
	// TCP-Echo carries the udp_input icall that must stay unresolved
	// (Table 3's footnote).
	for _, r := range rows {
		if r.App == "TCP-Echo" && r.Unresolved == 0 {
			t.Error("TCP-Echo's udp_input icall should be unresolved")
		}
	}
	out := exper.RenderTable3(rows)
	if !strings.Contains(out, "#Icall") {
		t.Error("render output incomplete")
	}
}

// Shape invariant behind Table 2's headline: averaged across the five
// comparison apps, OPEC's runtime factor must not exceed ACES's.
func TestTable2Shape(t *testing.T) {
	rows, err := exper.Table2(exper.Quick)
	if err != nil {
		t.Fatal(err)
	}
	var opec, aces float64
	var nOpec, nAces int
	for _, r := range rows {
		if r.Policy == "OPEC" {
			opec += r.RO
			nOpec++
		} else {
			aces += r.RO
			nAces++
		}
	}
	if opec/float64(nOpec) > aces/float64(nAces) {
		t.Errorf("mean RO: OPEC %.3f > ACES %.3f — Table 2's ordering lost",
			opec/float64(nOpec), aces/float64(nAces))
	}
	// And OPEC's SRAM overhead exceeds ACES's (shadowing costs memory —
	// the trade the paper calls out).
	var opecSO, acesSO float64
	for _, r := range rows {
		if r.Policy == "OPEC" {
			opecSO += r.SO
		} else {
			acesSO += r.SO / 3
		}
	}
	if opecSO <= acesSO {
		t.Errorf("mean SO: OPEC %.3f <= ACES %.3f — shadowing should cost more SRAM", opecSO/5, acesSO/5)
	}
}
