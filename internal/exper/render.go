package exper

import (
	"fmt"
	"strings"
)

// RenderTable1 prints Table 1 in the paper's column layout.
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1: security evaluation metrics\n")
	fmt.Fprintf(&sb, "%-11s %6s %12s %18s %22s\n",
		"Application", "#OPs", "#Avg.Funcs", "#Pri.Code(%)", "#Avg.GVars(%)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-11s %6d %12.2f %10d(%5.2f) %14.2f(%5.2f)\n",
			r.App, r.Ops, r.AvgFuncs, r.PriCode, r.PriCodePct, r.AvgGVars, r.AvgGVarsPct)
	}
	return sb.String()
}

// RenderFigure9 prints the Figure 9 data series.
func RenderFigure9(rows []Figure9Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 9: performance overhead of OPEC (percent)\n")
	fmt.Fprintf(&sb, "%-11s %10s %9s %9s %14s %14s\n",
		"Application", "Runtime%", "Flash%", "SRAM%", "vanilla(cyc)", "OPEC(cyc)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-11s %10.2f %9.2f %9.2f %14d %14d\n",
			r.App, r.RuntimePct, r.FlashPct, r.SRAMPct, r.VanillaCycles, r.OPECCycles)
	}
	return sb.String()
}

// RenderTable2 prints the OPEC-vs-ACES comparison.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: comparison of OPEC and ACES\n")
	fmt.Fprintf(&sb, "%-11s %-8s %8s %8s %8s %8s\n",
		"Application", "Policy", "RO(X)", "FO(%)", "SO(%)", "PAC(%)")
	last := ""
	for _, r := range rows {
		app := r.App
		if app == last {
			app = ""
		} else {
			last = r.App
		}
		fmt.Fprintf(&sb, "%-11s %-8s %8.2f %8.2f %8.2f %8.2f\n",
			app, r.Policy, r.RO, r.FO, r.SO, r.PAC)
	}
	return sb.String()
}

// RenderFigure10 prints the PT CDF series.
func RenderFigure10(series []Figure10Series) string {
	var sb strings.Builder
	sb.WriteString("Figure 10: cumulative ratio of PT (partition-time over-privilege)\n")
	for _, s := range series {
		fmt.Fprintf(&sb, "%-11s %-6s ", s.App, s.Strategy)
		for i, t := range s.Thresholds {
			fmt.Fprintf(&sb, "%.1f:%.2f ", t, s.CDF[i])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RenderFigure11 prints the per-task ET series.
func RenderFigure11(series []Figure11Series) string {
	var sb strings.Builder
	sb.WriteString("Figure 11: per-task ET (execution-time over-privilege)\n")
	for _, s := range series {
		fmt.Fprintf(&sb, "%-11s %-6s ", s.App, s.Strategy)
		for i, et := range s.ET {
			fmt.Fprintf(&sb, "task%d:%.2f ", i+1, et)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RenderTable3 prints the icall analysis statistics.
func RenderTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table 3: efficiency of the icall analysis\n")
	fmt.Fprintf(&sb, "%-11s %7s %6s %9s %6s %7s %6s %5s\n",
		"Application", "#Icall", "#SVF", "Time(s)", "#Type", "#Unres", "#Avg.", "#Max")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-11s %7d %6d %9.4f %6d %7d %6.2f %5d\n",
			r.App, r.ICalls, r.SVF, r.Seconds, r.TypeBased, r.Unresolved, r.AvgTargets, r.MaxTargets)
	}
	return sb.String()
}
