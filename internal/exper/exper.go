// Package exper regenerates every table and figure of the paper's
// evaluation (Section 6): Table 1 (security metrics), Figure 9
// (performance overheads), Table 2 (comparison to ACES), Figure 10
// (partition-time over-privilege CDFs), Figure 11 (execution-time
// over-privilege per task) and Table 3 (icall analysis efficiency).
//
// Experiments are methods on a Harness, which owns a memoized build
// cache (compilation mutates modules, so the cache compiles one fresh
// workload instance per (app, scheme, scale) key and shares the
// immutable build) and a bounded worker pool that fans per-app work
// out while reassembling results in the fixed application order —
// rendered tables are byte-identical at every parallelism level. The
// package-level functions are one-shot conveniences over a fresh
// harness; a sweep over several experiments should share one harness
// so builds and runs are reused across them.
package exper

import (
	"fmt"

	"opec/internal/aces"
	"opec/internal/apps"
	"opec/internal/metrics"
)

// AppSet selects workload sizes.
type AppSet int

// Full matches the paper's profiling windows; Quick shrinks rounds for
// tests and benchmarks.
const (
	Full AppSet = iota
	Quick
)

// AppsFor returns the seven workloads at the requested scale.
func AppsFor(s AppSet) []*apps.App {
	if s == Full {
		return apps.All()
	}
	return []*apps.App{
		apps.PinLockN(5),
		apps.AnimationN(3),
		apps.FatFsUSD(),
		apps.LCDuSDN(2),
		apps.TCPEchoN(3, 9),
		apps.Camera(),
		apps.CoreMarkN(3),
	}
}

// acesAppsFor returns the five ACES-comparison workloads (Section 6.4).
func acesAppsFor(s AppSet) []*apps.App {
	all := AppsFor(s)
	return []*apps.App{all[0], all[1], all[2], all[3], all[4]}
}

// Strategies is the evaluated ACES policy order.
var Strategies = []aces.Strategy{aces.Filename, aces.FilenameNoOpt, aces.Peripheral}

// One-shot conveniences: each builds a fresh harness (default
// parallelism), so repeated calls recompile from scratch. Sweeps
// should construct one Harness and call its methods instead.

// Table1 computes the Table 1 metrics for every workload.
func Table1(s AppSet) ([]Table1Row, error) { return NewHarness(0).Table1(s) }

// Figure9 measures runtime, Flash and SRAM overheads for every
// workload.
func Figure9(s AppSet) ([]Figure9Row, error) { return NewHarness(0).Figure9(s) }

// Table2 runs the five ACES applications under OPEC and all three ACES
// strategies.
func Table2(s AppSet) ([]Table2Row, error) { return NewHarness(0).Table2(s) }

// Figure10 computes the PT CDFs of the five ACES applications.
func Figure10(s AppSet) ([]Figure10Series, error) { return NewHarness(0).Figure10(s) }

// Figure11 evaluates per-task execution-time over-privilege.
func Figure11(s AppSet) ([]Figure11Series, error) { return NewHarness(0).Figure11(s) }

// Table3 reports the indirect-call resolution statistics per workload.
func Table3(s AppSet) ([]Table3Row, error) { return NewHarness(0).Table3(s) }

// ---- Table 1 ----

// Table1Row is one application's security metrics.
type Table1Row struct {
	App         string
	Ops         int
	AvgFuncs    float64
	PriCode     int     // privileged (monitor) code bytes
	PriCodePct  float64 // vs baseline application code
	AvgGVars    float64 // average accessible global bytes per operation
	AvgGVarsPct float64 // vs total writable global bytes
}

// Table1 computes the Table 1 metrics for every workload.
func (h *Harness) Table1(s AppSet) ([]Table1Row, error) {
	appList := AppsFor(s)
	rows := make([]Table1Row, len(appList))
	err := h.forEach(len(appList), func(i int) error {
		app := appList[i]
		b, err := h.Cache.OPECBuild(app, s)
		if err != nil {
			return fmt.Errorf("table1: %w", err)
		}
		row := Table1Row{App: app.Name, Ops: len(b.Ops), PriCode: b.MonitorCodeBytes}
		funcs, gbytes := 0, 0
		for _, op := range b.Ops {
			funcs += len(op.Funcs)
			gbytes += op.GlobalBytes()
		}
		row.AvgFuncs = float64(funcs) / float64(len(b.Ops))
		row.AvgGVars = float64(gbytes) / float64(len(b.Ops))
		row.PriCodePct = 100 * float64(b.MonitorCodeBytes) / float64(b.CodeBytes+b.RODataBytes)
		total := b.Mod.DataBytes()
		if total > 0 {
			row.AvgGVarsPct = 100 * row.AvgGVars / float64(total)
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	if avg, ok := averageTable1(rows); ok {
		rows = append(rows, avg)
	}
	return rows, nil
}

// averageTable1 builds the "Average" row. An empty row set has no
// average (the unguarded division would produce a NaN row), reported
// via the second return.
func averageTable1(rows []Table1Row) (Table1Row, bool) {
	if len(rows) == 0 {
		return Table1Row{}, false
	}
	avg := Table1Row{App: "Average"}
	n := float64(len(rows))
	for _, r := range rows {
		avg.Ops += r.Ops
		avg.AvgFuncs += r.AvgFuncs / n
		avg.PriCode += r.PriCode
		avg.PriCodePct += r.PriCodePct / n
		avg.AvgGVars += r.AvgGVars / n
		avg.AvgGVarsPct += r.AvgGVarsPct / n
	}
	avg.Ops = int(float64(avg.Ops)/n + 0.5)
	avg.PriCode = int(float64(avg.PriCode)/n + 0.5)
	return avg, true
}

// ---- Figure 9 ----

// Figure9Row is one application's OPEC-vs-vanilla overheads.
type Figure9Row struct {
	App        string
	RuntimePct float64
	FlashPct   float64
	SRAMPct    float64

	VanillaCycles uint64
	OPECCycles    uint64
}

// Figure9 measures runtime, Flash and SRAM overheads for every
// workload.
func (h *Harness) Figure9(s AppSet) ([]Figure9Row, error) {
	appList := AppsFor(s)
	rows := make([]Figure9Row, len(appList))
	err := h.forEach(len(appList), func(i int) error {
		row, err := h.figure9One(appList[i], s)
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	if n := float64(len(rows)); n > 0 {
		avg := Figure9Row{App: "Average"}
		for _, r := range rows {
			avg.RuntimePct += r.RuntimePct / n
			avg.FlashPct += r.FlashPct / n
			avg.SRAMPct += r.SRAMPct / n
		}
		rows = append(rows, avg)
	}
	return rows, nil
}

func (h *Harness) figure9One(app *apps.App, s AppSet) (Figure9Row, error) {
	rv, err := h.Cache.VanillaRun(app, s)
	if err != nil {
		return Figure9Row{}, fmt.Errorf("figure9: %w", err)
	}
	ro, err := h.Cache.OPECRun(app, s)
	if err != nil {
		return Figure9Row{}, fmt.Errorf("figure9: %w", err)
	}
	board := ro.Build.Board
	return Figure9Row{
		App:           app.Name,
		RuntimePct:    100 * (float64(ro.Cycles)/float64(rv.Cycles) - 1),
		FlashPct:      100 * float64(ro.Build.FlashUsed-rv.Van.FlashUsed) / float64(board.FlashSize),
		SRAMPct:       100 * float64(ro.Build.SRAMUsed-rv.Van.SRAMUsed) / float64(board.SRAMSize),
		VanillaCycles: rv.Cycles,
		OPECCycles:    ro.Cycles,
	}, nil
}

// ---- Table 2 ----

// Table2Row compares one policy on one application.
type Table2Row struct {
	App    string
	Policy string  // "OPEC", "ACES-1", "ACES-2", "ACES-3"
	RO     float64 // runtime overhead factor vs vanilla (X)
	FO     float64 // Flash overhead %
	SO     float64 // SRAM overhead %
	PAC    float64 // privileged application code %
}

// Table2 runs the five ACES applications under OPEC and all three ACES
// strategies.
func (h *Harness) Table2(s AppSet) ([]Table2Row, error) {
	appList := acesAppsFor(s)
	perApp := make([][]Table2Row, len(appList))
	err := h.forEach(len(appList), func(i int) error {
		app := appList[i]
		rv, err := h.Cache.VanillaRun(app, s)
		if err != nil {
			return fmt.Errorf("table2: %w", err)
		}
		ro, err := h.Cache.OPECRun(app, s)
		if err != nil {
			return fmt.Errorf("table2: %w", err)
		}
		board := ro.Build.Board
		rows := []Table2Row{{
			App: app.Name, Policy: "OPEC",
			RO:  float64(ro.Cycles) / float64(rv.Cycles),
			FO:  100 * float64(ro.Build.FlashUsed-rv.Van.FlashUsed) / float64(board.FlashSize),
			SO:  100 * float64(ro.Build.SRAMUsed-rv.Van.SRAMUsed) / float64(board.SRAMSize),
			PAC: 0, // OPEC keeps all application code unprivileged
		}}
		for j, strat := range Strategies {
			ra, err := h.Cache.ACESRun(app, s, strat)
			if err != nil {
				return fmt.Errorf("table2: %w", err)
			}
			rows = append(rows, Table2Row{
				App: app.Name, Policy: fmt.Sprintf("ACES-%d", j+1),
				RO:  float64(ra.Cycles) / float64(rv.Cycles),
				FO:  100 * float64(ra.ABld.FlashUsed-rv.Van.FlashUsed) / float64(board.FlashSize),
				SO:  100 * float64(ra.ABld.SRAMUsed-rv.Van.SRAMUsed) / float64(board.SRAMSize),
				PAC: 100 * float64(ra.ABld.PrivilegedCodeBytes()) / float64(ra.ABld.CodeBytes),
			})
		}
		perApp[i] = rows
		return nil
	})
	if err != nil {
		return nil, err
	}
	var rows []Table2Row
	for _, r := range perApp {
		rows = append(rows, r...)
	}
	return rows, nil
}

// ---- Figure 10 ----

// Figure10Series is the PT CDF of one app under one strategy.
type Figure10Series struct {
	App      string
	Strategy string
	PTs      []float64 // raw per-compartment PT values
	// Thresholds/CDF are the plotted cumulative-ratio points.
	Thresholds []float64
	CDF        []float64
}

// Figure10Thresholds are the plot's x-axis points.
var Figure10Thresholds = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// Figure10 computes the PT CDFs of the five ACES applications under the
// three strategies (plus OPEC's, which is identically zero — included
// so the claim is produced by measurement, not assumption).
func (h *Harness) Figure10(s AppSet) ([]Figure10Series, error) {
	appList := acesAppsFor(s)
	perApp := make([][]Figure10Series, len(appList))
	err := h.forEach(len(appList), func(i int) error {
		app := appList[i]
		var out []Figure10Series
		for j, strat := range Strategies {
			b, err := h.Cache.ACESBuild(app, s, strat)
			if err != nil {
				return fmt.Errorf("figure10: %w", err)
			}
			pts := metrics.PTsForACES(b)
			out = append(out, Figure10Series{
				App: app.Name, Strategy: fmt.Sprintf("ACES%d", j+1),
				PTs:        pts,
				Thresholds: Figure10Thresholds,
				CDF:        metrics.CumulativeRatio(pts, Figure10Thresholds),
			})
		}
		ob, err := h.Cache.OPECBuild(app, s)
		if err != nil {
			return fmt.Errorf("figure10: %w", err)
		}
		pts := metrics.PTsForOPEC(ob)
		out = append(out, Figure10Series{
			App: app.Name, Strategy: "OPEC",
			PTs:        pts,
			Thresholds: Figure10Thresholds,
			CDF:        metrics.CumulativeRatio(pts, Figure10Thresholds),
		})
		perApp[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []Figure10Series
	for _, series := range perApp {
		out = append(out, series...)
	}
	return out, nil
}

// ---- Figure 11 ----

// Figure11Series is the per-task ET of one app under one policy.
type Figure11Series struct {
	App      string
	Strategy string
	Tasks    []string
	ET       []float64
}

// Figure11 traces each of the five applications once and evaluates the
// per-task execution-time over-privilege under OPEC and the three ACES
// strategies.
func (h *Harness) Figure11(s AppSet) ([]Figure11Series, error) {
	appList := acesAppsFor(s)
	perApp := make([][]Figure11Series, len(appList))
	err := h.forEach(len(appList), func(i int) error {
		app := appList[i]
		tr, err := h.Cache.Trace(app, s)
		if err != nil {
			return fmt.Errorf("figure11: %w", err)
		}
		ob, err := h.Cache.OPECBuild(app, s)
		if err != nil {
			return fmt.Errorf("figure11: %w", err)
		}
		names, ets := metrics.ETForOPEC(ob, tr)
		out := []Figure11Series{{App: app.Name, Strategy: "OPEC", Tasks: names, ET: ets}}
		for j, strat := range Strategies {
			ab, err := h.Cache.ACESBuild(app, s, strat)
			if err != nil {
				return fmt.Errorf("figure11: %w", err)
			}
			anames, aets := metrics.ETForACES(ab, tr)
			out = append(out, Figure11Series{
				App: app.Name, Strategy: fmt.Sprintf("ACES%d", j+1),
				Tasks: anames, ET: aets,
			})
		}
		perApp[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []Figure11Series
	for _, series := range perApp {
		out = append(out, series...)
	}
	return out, nil
}

// ---- Table 3 ----

// Table3Row is one application's icall-analysis efficiency.
type Table3Row struct {
	App        string
	ICalls     int
	SVF        int
	Seconds    float64
	TypeBased  int
	Unresolved int
	AvgTargets float64
	MaxTargets int
}

// Table3 reports the indirect-call resolution statistics per workload.
func (h *Harness) Table3(s AppSet) ([]Table3Row, error) {
	appList := AppsFor(s)
	rows := make([]Table3Row, len(appList))
	err := h.forEach(len(appList), func(i int) error {
		app := appList[i]
		b, err := h.Cache.OPECBuild(app, s)
		if err != nil {
			return fmt.Errorf("table3: %w", err)
		}
		st := b.Analysis.CG.Stats
		rows[i] = Table3Row{
			App:        app.Name,
			ICalls:     st.NumICalls,
			SVF:        st.ResolvedSVF,
			Seconds:    st.SolveSeconds,
			TypeBased:  st.ResolvedType,
			Unresolved: st.Unresolved,
			AvgTargets: st.AvgTargets,
			MaxTargets: st.MaxTargets,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}
