// Package exper regenerates every table and figure of the paper's
// evaluation (Section 6): Table 1 (security metrics), Figure 9
// (performance overheads), Table 2 (comparison to ACES), Figure 10
// (partition-time over-privilege CDFs), Figure 11 (execution-time
// over-privilege per task) and Table 3 (icall analysis efficiency).
//
// Each experiment builds fresh workload instances (compilation mutates
// modules) and returns typed rows; render.go turns them into the
// console tables and series the artifact's experiment scripts print.
package exper

import (
	"fmt"

	"opec/internal/aces"
	"opec/internal/apps"
	"opec/internal/core"
	"opec/internal/metrics"
	"opec/internal/run"
)

// AppSet selects workload sizes.
type AppSet int

// Full matches the paper's profiling windows; Quick shrinks rounds for
// tests and benchmarks.
const (
	Full AppSet = iota
	Quick
)

// appsFor returns the seven workloads at the requested scale.
func appsFor(s AppSet) []*apps.App {
	if s == Full {
		return apps.All()
	}
	return []*apps.App{
		apps.PinLockN(5),
		apps.AnimationN(3),
		apps.FatFsUSD(),
		apps.LCDuSDN(2),
		apps.TCPEchoN(3, 9),
		apps.Camera(),
		apps.CoreMarkN(3),
	}
}

// acesAppsFor returns the five ACES-comparison workloads (Section 6.4).
func acesAppsFor(s AppSet) []*apps.App {
	all := appsFor(s)
	return []*apps.App{all[0], all[1], all[2], all[3], all[4]}
}

// Strategies is the evaluated ACES policy order.
var Strategies = []aces.Strategy{aces.Filename, aces.FilenameNoOpt, aces.Peripheral}

// ---- Table 1 ----

// Table1Row is one application's security metrics.
type Table1Row struct {
	App         string
	Ops         int
	AvgFuncs    float64
	PriCode     int     // privileged (monitor) code bytes
	PriCodePct  float64 // vs baseline application code
	AvgGVars    float64 // average accessible global bytes per operation
	AvgGVarsPct float64 // vs total writable global bytes
}

// Table1 computes the Table 1 metrics for every workload.
func Table1(s AppSet) ([]Table1Row, error) {
	var rows []Table1Row
	for _, app := range appsFor(s) {
		inst := app.New()
		b, err := core.Compile(inst.Mod, inst.Board, inst.Cfg)
		if err != nil {
			return nil, fmt.Errorf("table1 %s: %w", app.Name, err)
		}
		row := Table1Row{App: app.Name, Ops: len(b.Ops), PriCode: b.MonitorCodeBytes}
		funcs, gbytes := 0, 0
		for _, op := range b.Ops {
			funcs += len(op.Funcs)
			gbytes += op.GlobalBytes()
		}
		row.AvgFuncs = float64(funcs) / float64(len(b.Ops))
		row.AvgGVars = float64(gbytes) / float64(len(b.Ops))
		row.PriCodePct = 100 * float64(b.MonitorCodeBytes) / float64(b.CodeBytes+b.RODataBytes)
		total := b.Mod.DataBytes()
		if total > 0 {
			row.AvgGVarsPct = 100 * row.AvgGVars / float64(total)
		}
		rows = append(rows, row)
	}
	rows = append(rows, averageTable1(rows))
	return rows, nil
}

func averageTable1(rows []Table1Row) Table1Row {
	avg := Table1Row{App: "Average"}
	n := float64(len(rows))
	for _, r := range rows {
		avg.Ops += r.Ops
		avg.AvgFuncs += r.AvgFuncs / n
		avg.PriCode += r.PriCode
		avg.PriCodePct += r.PriCodePct / n
		avg.AvgGVars += r.AvgGVars / n
		avg.AvgGVarsPct += r.AvgGVarsPct / n
	}
	avg.Ops = int(float64(avg.Ops)/n + 0.5)
	avg.PriCode = int(float64(avg.PriCode)/n + 0.5)
	return avg
}

// ---- Figure 9 ----

// Figure9Row is one application's OPEC-vs-vanilla overheads.
type Figure9Row struct {
	App        string
	RuntimePct float64
	FlashPct   float64
	SRAMPct    float64

	VanillaCycles uint64
	OPECCycles    uint64
}

// Figure9 measures runtime, Flash and SRAM overheads for every
// workload.
func Figure9(s AppSet) ([]Figure9Row, error) {
	var rows []Figure9Row
	for _, app := range appsFor(s) {
		row, err := figure9One(app)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	avg := Figure9Row{App: "Average"}
	n := float64(len(rows))
	for _, r := range rows {
		avg.RuntimePct += r.RuntimePct / n
		avg.FlashPct += r.FlashPct / n
		avg.SRAMPct += r.SRAMPct / n
	}
	rows = append(rows, avg)
	return rows, nil
}

func figure9One(app *apps.App) (Figure9Row, error) {
	iv := app.New()
	rv, err := run.Vanilla(iv)
	if err != nil {
		return Figure9Row{}, fmt.Errorf("figure9 %s vanilla: %w", app.Name, err)
	}
	if err := run.AndCheck(iv, rv); err != nil {
		return Figure9Row{}, fmt.Errorf("figure9 %s vanilla check: %w", app.Name, err)
	}
	io := app.New()
	ro, err := run.OPEC(io)
	if err != nil {
		return Figure9Row{}, fmt.Errorf("figure9 %s OPEC: %w", app.Name, err)
	}
	if err := run.AndCheck(io, ro); err != nil {
		return Figure9Row{}, fmt.Errorf("figure9 %s OPEC check: %w", app.Name, err)
	}
	board := iv.Board
	return Figure9Row{
		App:           app.Name,
		RuntimePct:    100 * (float64(ro.Cycles)/float64(rv.Cycles) - 1),
		FlashPct:      100 * float64(ro.Build.FlashUsed-rv.Van.FlashUsed) / float64(board.FlashSize),
		SRAMPct:       100 * float64(ro.Build.SRAMUsed-rv.Van.SRAMUsed) / float64(board.SRAMSize),
		VanillaCycles: rv.Cycles,
		OPECCycles:    ro.Cycles,
	}, nil
}

// ---- Table 2 ----

// Table2Row compares one policy on one application.
type Table2Row struct {
	App    string
	Policy string  // "OPEC", "ACES-1", "ACES-2", "ACES-3"
	RO     float64 // runtime overhead factor vs vanilla (X)
	FO     float64 // Flash overhead %
	SO     float64 // SRAM overhead %
	PAC    float64 // privileged application code %
}

// Table2 runs the five ACES applications under OPEC and all three ACES
// strategies.
func Table2(s AppSet) ([]Table2Row, error) {
	var rows []Table2Row
	for _, app := range acesAppsFor(s) {
		iv := app.New()
		rv, err := run.Vanilla(iv)
		if err != nil {
			return nil, fmt.Errorf("table2 %s vanilla: %w", app.Name, err)
		}
		board := iv.Board

		io := app.New()
		ro, err := run.OPEC(io)
		if err != nil {
			return nil, fmt.Errorf("table2 %s OPEC: %w", app.Name, err)
		}
		rows = append(rows, Table2Row{
			App: app.Name, Policy: "OPEC",
			RO:  float64(ro.Cycles) / float64(rv.Cycles),
			FO:  100 * float64(ro.Build.FlashUsed-rv.Van.FlashUsed) / float64(board.FlashSize),
			SO:  100 * float64(ro.Build.SRAMUsed-rv.Van.SRAMUsed) / float64(board.SRAMSize),
			PAC: 0, // OPEC keeps all application code unprivileged
		})

		for i, strat := range Strategies {
			ia := app.New()
			ra, err := run.ACES(ia, strat)
			if err != nil {
				return nil, fmt.Errorf("table2 %s %v: %w", app.Name, strat, err)
			}
			rows = append(rows, Table2Row{
				App: app.Name, Policy: fmt.Sprintf("ACES-%d", i+1),
				RO:  float64(ra.Cycles) / float64(rv.Cycles),
				FO:  100 * float64(ra.ABld.FlashUsed-rv.Van.FlashUsed) / float64(board.FlashSize),
				SO:  100 * float64(ra.ABld.SRAMUsed-rv.Van.SRAMUsed) / float64(board.SRAMSize),
				PAC: 100 * float64(ra.ABld.PrivilegedCodeBytes()) / float64(ra.ABld.CodeBytes),
			})
		}
	}
	return rows, nil
}

// ---- Figure 10 ----

// Figure10Series is the PT CDF of one app under one strategy.
type Figure10Series struct {
	App      string
	Strategy string
	PTs      []float64 // raw per-compartment PT values
	// Thresholds/CDF are the plotted cumulative-ratio points.
	Thresholds []float64
	CDF        []float64
}

// Figure10Thresholds are the plot's x-axis points.
var Figure10Thresholds = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// Figure10 computes the PT CDFs of the five ACES applications under the
// three strategies (plus OPEC's, which is identically zero — included
// so the claim is produced by measurement, not assumption).
func Figure10(s AppSet) ([]Figure10Series, error) {
	var out []Figure10Series
	for _, app := range acesAppsFor(s) {
		for i, strat := range Strategies {
			inst := app.New()
			b, err := aces.Compile(inst.Mod, inst.Board, strat)
			if err != nil {
				return nil, fmt.Errorf("figure10 %s %v: %w", app.Name, strat, err)
			}
			pts := metrics.PTsForACES(b)
			out = append(out, Figure10Series{
				App: app.Name, Strategy: fmt.Sprintf("ACES%d", i+1),
				PTs:        pts,
				Thresholds: Figure10Thresholds,
				CDF:        metrics.CumulativeRatio(pts, Figure10Thresholds),
			})
		}
		inst := app.New()
		ob, err := core.Compile(inst.Mod, inst.Board, inst.Cfg)
		if err != nil {
			return nil, fmt.Errorf("figure10 %s OPEC: %w", app.Name, err)
		}
		pts := metrics.PTsForOPEC(ob)
		out = append(out, Figure10Series{
			App: app.Name, Strategy: "OPEC",
			PTs:        pts,
			Thresholds: Figure10Thresholds,
			CDF:        metrics.CumulativeRatio(pts, Figure10Thresholds),
		})
	}
	return out, nil
}

// ---- Figure 11 ----

// Figure11Series is the per-task ET of one app under one policy.
type Figure11Series struct {
	App      string
	Strategy string
	Tasks    []string
	ET       []float64
}

// Figure11 traces each of the five applications once and evaluates the
// per-task execution-time over-privilege under OPEC and the three ACES
// strategies.
func Figure11(s AppSet) ([]Figure11Series, error) {
	var out []Figure11Series
	for _, app := range acesAppsFor(s) {
		ti := app.New()
		tr, err := metrics.TraceTasks(ti)
		if err != nil {
			return nil, fmt.Errorf("figure11 %s trace: %w", app.Name, err)
		}

		oi := app.New()
		ob, err := core.Compile(oi.Mod, oi.Board, oi.Cfg)
		if err != nil {
			return nil, err
		}
		names, ets := metrics.ETForOPEC(ob, tr)
		out = append(out, Figure11Series{App: app.Name, Strategy: "OPEC", Tasks: names, ET: ets})

		for i, strat := range Strategies {
			ai := app.New()
			ab, err := aces.Compile(ai.Mod, ai.Board, strat)
			if err != nil {
				return nil, err
			}
			anames, aets := metrics.ETForACES(ab, tr)
			out = append(out, Figure11Series{
				App: app.Name, Strategy: fmt.Sprintf("ACES%d", i+1),
				Tasks: anames, ET: aets,
			})
		}
	}
	return out, nil
}

// ---- Table 3 ----

// Table3Row is one application's icall-analysis efficiency.
type Table3Row struct {
	App        string
	ICalls     int
	SVF        int
	Seconds    float64
	TypeBased  int
	Unresolved int
	AvgTargets float64
	MaxTargets int
}

// Table3 reports the indirect-call resolution statistics per workload.
func Table3(s AppSet) ([]Table3Row, error) {
	var rows []Table3Row
	for _, app := range appsFor(s) {
		inst := app.New()
		b, err := core.Compile(inst.Mod, inst.Board, inst.Cfg)
		if err != nil {
			return nil, fmt.Errorf("table3 %s: %w", app.Name, err)
		}
		st := b.Analysis.CG.Stats
		rows = append(rows, Table3Row{
			App:        app.Name,
			ICalls:     st.NumICalls,
			SVF:        st.ResolvedSVF,
			Seconds:    st.SolveSeconds,
			TypeBased:  st.ResolvedType,
			Unresolved: st.Unresolved,
			AvgTargets: st.AvgTargets,
			MaxTargets: st.MaxTargets,
		})
	}
	return rows, nil
}
