package exper

import (
	"testing"

	"opec/internal/monitor"
	"opec/internal/run"
)

// Backend equivalence at the experiment layer: every rendered artifact
// — evaluation tables, the §6.1 golden trace, campaign verdict tables
// (including the fork engine) — must be byte-identical whether the
// workloads execute on the interpreter or on the translation engine.
// The tables embed absolute cycle counts, so this pins timing, not
// just final answers.

// underBackend runs fn with the process-default backend overridden.
func underBackend(t *testing.T, backend string, fn func()) {
	t.Helper()
	saved := run.DefaultBackend
	defer func() { run.DefaultBackend = saved }()
	if err := run.SetDefaultBackend(backend); err != nil {
		t.Fatal(err)
	}
	fn()
}

func TestRenderedTablesBackendIdentity(t *testing.T) {
	render := func(backend string) (t1, f9 string) {
		underBackend(t, backend, func() {
			h := NewHarness(0)
			rows, err := h.Table1(Quick)
			if err != nil {
				t.Fatalf("%s Table1: %v", backend, err)
			}
			t1 = RenderTable1(rows)
			fig, err := h.Figure9(Quick)
			if err != nil {
				t.Fatalf("%s Figure9: %v", backend, err)
			}
			f9 = RenderFigure9(fig)
		})
		return
	}
	t1i, f9i := render(run.BackendInterp)
	t1x, f9x := render(run.BackendXlat)
	if t1i != t1x {
		t.Errorf("Table 1 differs across backends:\n--- interp ---\n%s--- xlat ---\n%s", t1i, t1x)
	}
	if f9i != f9x {
		t.Errorf("Figure 9 differs across backends:\n--- interp ---\n%s--- xlat ---\n%s", f9i, f9x)
	}
}

// TestGoldenKeyOverwriteTraceXlat extends the golden-trace invariant to
// the translation engine: the §6.1 exploit's full event stream renders
// byte-identically on both backends.
func TestGoldenKeyOverwriteTraceXlat(t *testing.T) {
	var golden, xlat string
	underBackend(t, run.BackendInterp, func() { golden = traceKeyOverwrite(t) })
	underBackend(t, run.BackendXlat, func() { xlat = traceKeyOverwrite(t) })
	if golden != xlat {
		t.Errorf("golden trace differs under xlat:\n--- interp ---\n%s--- xlat ---\n%s", golden, xlat)
	}
}

// TestInjectCampaignBackendIdentity runs the seeded campaign on both
// backends and engines: the interp boot table is the oracle; the xlat
// boot and xlat fork tables must match it byte for byte. The fork leg
// is the end-to-end check that forked machines with warm translation
// caches and Arm-cleared certificates replay exactly.
func TestInjectCampaignBackendIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign replays every workload in -short mode")
	}
	cfg := tinyCampaign(11)
	pol := monitor.Policy{Kind: monitor.RestartOperation}

	table := func(backend string, engine InjectEngine) (out string) {
		underBackend(t, backend, func() {
			rows, err := NewHarness(0).InjectWith(Quick, cfg, pol, engine)
			if err != nil {
				t.Fatalf("%s/%v: %v", backend, engine, err)
			}
			out = RenderInject(rows)
		})
		return
	}
	oracle := table(run.BackendInterp, EngineBoot)
	if got := table(run.BackendXlat, EngineBoot); got != oracle {
		t.Errorf("xlat boot campaign differs:\n--- interp ---\n%s--- xlat ---\n%s", oracle, got)
	}
	if got := table(run.BackendXlat, EngineFork); got != oracle {
		t.Errorf("xlat fork campaign differs:\n--- interp/boot ---\n%s--- xlat/fork ---\n%s", oracle, got)
	}
}
