package exper

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
	"testing"
)

// averageTable1 must refuse an empty row set instead of producing a NaN
// "Average" row by dividing by zero.
func TestAverageTable1EmptyGuard(t *testing.T) {
	if avg, ok := averageTable1(nil); ok {
		t.Errorf("empty row set produced an average row: %+v", avg)
	}
	rows := []Table1Row{
		{App: "A", Ops: 6, AvgFuncs: 2, PriCode: 8200, PriCodePct: 10, AvgGVars: 40, AvgGVarsPct: 20},
		{App: "B", Ops: 8, AvgFuncs: 4, PriCode: 8400, PriCodePct: 12, AvgGVars: 60, AvgGVarsPct: 30},
	}
	avg, ok := averageTable1(rows)
	if !ok {
		t.Fatal("non-empty row set produced no average")
	}
	if avg.Ops != 7 || avg.PriCode != 8300 {
		t.Errorf("average Ops/PriCode = %d/%d, want 7/8300", avg.Ops, avg.PriCode)
	}
	for _, v := range []float64{avg.AvgFuncs, avg.PriCodePct, avg.AvgGVars, avg.AvgGVarsPct} {
		if math.IsNaN(v) {
			t.Errorf("average contains NaN: %+v", avg)
		}
	}
}

// forEach must run every index exactly once at any parallelism and
// report the lowest-index error, so failures are deterministic too.
func TestForEachLowestIndexError(t *testing.T) {
	for _, parallel := range []int{1, 3, 16} {
		h := NewHarness(parallel)
		var ran atomic.Int64
		err := h.forEach(10, func(i int) error {
			ran.Add(1)
			if i == 7 || i == 3 {
				return fmt.Errorf("job %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "job 3 failed" {
			t.Errorf("parallel=%d: err = %v, want the lowest-index failure (job 3)", parallel, err)
		}
		if ran.Load() != 10 {
			t.Errorf("parallel=%d: ran %d jobs, want 10", parallel, ran.Load())
		}
	}
}

// forEach with zero jobs must not deadlock or error.
func TestForEachEmpty(t *testing.T) {
	h := NewHarness(4)
	if err := h.forEach(0, func(int) error { return errors.New("never") }); err != nil {
		t.Fatal(err)
	}
}
