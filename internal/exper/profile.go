package exper

import (
	"fmt"
	"strings"

	"opec/internal/trace"
)

// The profiling experiment: every workload executed once under OPEC
// with the event trace attached, folded into per-operation cycle
// attribution (the Table 4 analogue — app cycles vs monitor overhead
// split into switch/sync/emulation buckets), plus the run's unified
// counter snapshot (machine, MPU/TLB, bus and monitor counters).

// ProfileRow is one workload's attribution summary. The per-domain
// breakdown is carried alongside for rendering; the JSON form (used by
// the BENCH_mach.json profile section) keeps only the aggregate.
type ProfileRow struct {
	App         string `json:"app"`
	Cycles      uint64 `json:"cycles"`
	Activations uint64 `json:"activations"`
	// Monitor-overhead buckets summed over all domains.
	SwitchCycles   uint64 `json:"switch_cycles"`
	SyncCycles     uint64 `json:"sync_cycles"`
	EmuCycles      uint64 `json:"emu_cycles"`
	RecoveryCycles uint64 `json:"recovery_cycles"`
	// OverheadPct is monitor cycles as a share of wall cycles.
	OverheadPct float64 `json:"overhead_pct"`
	// SwitchPerActivation should match the monitor's modeled gate
	// round-trip cost (monitor.ModeledSwitchCycles) on clean MPU runs.
	SwitchPerActivation float64 `json:"switch_per_activation"`
	// Events/Dropped are the trace bus totals for the run.
	Events  uint64 `json:"events"`
	Dropped uint64 `json:"dropped"`
	// Counters is the unified registry snapshot.
	Counters map[string]uint64 `json:"counters"`

	// Detail is the full per-domain profile (not serialized).
	Detail *trace.Profile `json:"-"`
}

// Profile runs every workload at scale s under OPEC with tracing and
// returns one attribution row per workload, in application order.
func (h *Harness) Profile(s AppSet) ([]ProfileRow, error) {
	appList := AppsFor(s)
	rows := make([]ProfileRow, len(appList))
	err := h.forEach(len(appList), func(i int) error {
		app := appList[i]
		res, buf, prof, err := h.Cache.ProfileRun(app, s)
		if err != nil {
			return fmt.Errorf("profile: %w", err)
		}
		t := prof.Totals()
		row := ProfileRow{
			App:         app.Name,
			Cycles:      res.Cycles,
			Activations: t.Activations,

			SwitchCycles:   t.SwitchCycles,
			SyncCycles:     t.SyncCycles,
			EmuCycles:      t.EmuCycles,
			RecoveryCycles: t.RecoveryCycles,

			Events:  buf.Emitted(),
			Dropped: buf.Dropped(),
			Detail:  prof,
		}
		if t.WallCycles > 0 {
			row.OverheadPct = 100 * float64(t.MonitorCycles()) / float64(t.WallCycles)
		}
		if t.Activations > 0 {
			row.SwitchPerActivation = float64(t.SwitchCycles) / float64(t.Activations)
		}
		reg := &trace.Registry{}
		reg.Register(res.Machine)
		reg.Register(&res.Mon.Stats)
		reg.Register(buf)
		row.Counters = reg.Map()
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Profile is the one-shot convenience over a fresh harness.
func ProfileAll(s AppSet) ([]ProfileRow, error) { return NewHarness(0).Profile(s) }

// RenderProfile prints the summary table followed by each workload's
// per-domain attribution.
func RenderProfile(rows []ProfileRow) string {
	var sb strings.Builder
	sb.WriteString("Profiling: per-workload monitor-overhead attribution (cycles)\n")
	fmt.Fprintf(&sb, "%-11s %12s %6s %10s %10s %8s %8s %8s %9s %9s\n",
		"Application", "Cycles", "Acts", "Switch", "Sync", "Emu", "Recov",
		"Ovh%", "Sw/Act", "Events")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-11s %12d %6d %10d %10d %8d %8d %7.2f%% %9.1f %9d\n",
			r.App, r.Cycles, r.Activations, r.SwitchCycles, r.SyncCycles,
			r.EmuCycles, r.RecoveryCycles, r.OverheadPct, r.SwitchPerActivation,
			r.Events)
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "\n-- %s --\n%s", r.App, r.Detail.Render())
	}
	return sb.String()
}
