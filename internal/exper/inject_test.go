package exper

import (
	"bytes"
	"encoding/json"
	"testing"

	"opec/internal/inject"
	"opec/internal/monitor"
)

// tinyCampaign keeps test campaigns fast; determinism claims hold at
// any size because sampling is seed-driven.
func tinyCampaign(seed int64) inject.Config {
	return inject.Config{
		Seed: seed, VictimsPerOp: 1, PeriphsPerOp: 1,
		BitFlips: 1, GateTrials: 1, StackTrials: 1, PeriphTrials: 1,
	}
}

// The acceptance invariants of the campaign: byte-identical verdict
// tables per seed (across fresh harnesses at different parallelism),
// zero escapes under OPEC, and at least one escape under the
// merged-region ACES configuration.
func TestInjectCampaignDeterministicAndContained(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign replays every workload in -short mode")
	}
	cfg := tinyCampaign(7)
	rows1, err := NewHarness(0).Inject(Quick, cfg, monitor.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := NewHarness(1).Inject(Quick, cfg, monitor.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(rows1)
	j2, _ := json.Marshal(rows2)
	if !bytes.Equal(j1, j2) {
		t.Errorf("same seed produced different verdict tables:\n%s\n%s", j1, j2)
	}

	acesRows, acesEscapes := 0, 0
	for _, r := range rows1 {
		if r.Trials == 0 {
			t.Errorf("%s/%s: empty trial list", r.App, r.Scheme)
		}
		switch r.Scheme {
		case "OPEC":
			if r.Escapes() != 0 || r.Count(inject.CrashedMonitor) != 0 {
				t.Errorf("%s under OPEC: %d escapes, %d monitor crashes (first: %s)",
					r.App, r.Escapes(), r.Count(inject.CrashedMonitor), r.FirstEscape)
			}
			if r.Contained() != r.Trials {
				t.Errorf("%s under OPEC: %d/%d contained", r.App, r.Contained(), r.Trials)
			}
		case "ACES-2":
			acesRows++
			acesEscapes += r.Escapes()
		}
	}
	if acesRows != 5 {
		t.Errorf("ACES rows = %d, want 5", acesRows)
	}
	if acesEscapes == 0 {
		t.Error("merged-region ACES recorded no escapes — over-privilege not observed")
	}
}

// Under the restart policy the same campaign still contains everything,
// and the policy demonstrably fires: operations restart and previously
// fatal trials finish as recovered in more than one workload.
func TestInjectCampaignRestartPolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign replays every workload in -short mode")
	}
	rows, err := NewHarness(0).Inject(Quick, tinyCampaign(7), monitor.Policy{Kind: monitor.RestartOperation})
	if err != nil {
		t.Fatal(err)
	}
	var restarts uint64
	appsRecovered := 0
	for _, r := range rows {
		if r.Scheme != "OPEC" {
			continue
		}
		if r.Escapes() != 0 || r.Count(inject.CrashedMonitor) != 0 {
			t.Errorf("%s under OPEC/restart: %d escapes, %d crashes",
				r.App, r.Escapes(), r.Count(inject.CrashedMonitor))
		}
		restarts += r.Restarts
		if r.Count(inject.Recovered) > 0 {
			appsRecovered++
		}
	}
	if restarts == 0 {
		t.Error("restart policy never fired across the campaign")
	}
	if appsRecovered < 2 {
		t.Errorf("recovered trials in %d workloads, want >= 2", appsRecovered)
	}
}
