package exper

import (
	"strings"
	"testing"

	"opec/internal/apps"
	"opec/internal/inject"
	"opec/internal/mach"
	"opec/internal/monitor"
	"opec/internal/trace"
)

// keyOverwriteSpec is the §6.1 case study as a replayable trial: on
// Lock_Task's first entry, a rogue store of 0xEE into KEY.
var keyOverwriteSpec = inject.Spec{
	Kind: inject.RogueStore, Func: "Lock_Task", N: 1,
	Target: "KEY", Value: 0xEE,
}

// traceKeyOverwrite replays the exploit under the restart policy with a
// trace attached and returns the deterministic text render.
func traceKeyOverwrite(t *testing.T) string {
	t.Helper()
	buf := trace.NewBuffer(0)
	out, err := inject.TraceOPEC(apps.PinLockN(1), keyOverwriteSpec,
		monitor.Policy{Kind: monitor.RestartOperation}, 0, buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != inject.Recovered {
		t.Fatalf("exploit verdict = %v, want %v", out.Verdict, inject.Recovered)
	}
	return buf.RenderText()
}

// TestGoldenKeyOverwriteTrace pins the event sequence of the paper's
// KEY-overwrite exploit: the gate enters Lock_Task, the MPU raises a
// MemManage write fault on KEY's public original, and the policy
// restarts the operation — in that order, byte-identically across
// repeated runs and with the simulator's lookup caches disabled
// (extending the cache-transparency invariant to the event trace).
func TestGoldenKeyOverwriteTrace(t *testing.T) {
	golden := traceKeyOverwrite(t)

	// Ordered containment chain: gate enter → MemManage fault → restart.
	// Each link is anchored after the previous one; boot-time emulation
	// faults (PPB accesses) precede the gate and must not satisfy the
	// chain.
	gate := strings.Index(golden, "gate-enter    gate=Lock_Task")
	if gate < 0 {
		t.Fatalf("no Lock_Task gate entry in trace:\n%s", golden)
	}
	fault := strings.Index(golden[gate:], "fault         kind=0 write")
	if fault < 0 {
		t.Fatalf("no MemManage write fault after the Lock_Task gate:\n%s", golden)
	}
	fault += gate
	recovery := strings.Index(golden[fault:], "recovery      restart attempt=1")
	if recovery < 0 {
		t.Fatalf("no restart recovery after the fault:\n%s", golden)
	}

	if again := traceKeyOverwrite(t); again != golden {
		t.Error("trace differs between identical runs")
	}

	saved := mach.DisableCaches
	defer func() { mach.DisableCaches = saved }()
	mach.DisableCaches = !saved
	if uncached := traceKeyOverwrite(t); uncached != golden {
		t.Error("trace differs with lookup caches toggled: caches are not transparent to events")
	}
}

// TestProfileParallelismInvariant renders the profiling experiment at
// two harness parallelism levels; like every other rendered table, the
// output must be byte-identical.
func TestProfileParallelismInvariant(t *testing.T) {
	serial, err := NewHarness(1).Profile(Quick)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := NewHarness(4).Profile(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := RenderProfile(serial), RenderProfile(wide); a != b {
		t.Errorf("profile render differs across parallelism:\n--- parallel=1 ---\n%s\n--- parallel=4 ---\n%s", a, b)
	}
}
