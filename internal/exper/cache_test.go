package exper_test

import (
	"sync"
	"testing"

	"opec/internal/aces"
	"opec/internal/core"
	"opec/internal/exper"
)

// TestCacheSameKeyIdentical: repeated Gets of one key return the
// identical build pointer without recompiling.
func TestCacheSameKeyIdentical(t *testing.T) {
	c := exper.NewCache()
	app := exper.AppsFor(exper.Quick)[0] // PinLock

	b1, err := c.OPECBuild(app, exper.Quick)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c.OPECBuild(app, exper.Quick)
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Error("same-key OPECBuild returned distinct builds")
	}
	if got := c.Misses(); got != 1 {
		t.Errorf("misses = %d after two same-key Gets, want 1", got)
	}

	a1, err := c.ACESBuild(app, exper.Quick, aces.Filename)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.ACESBuild(app, exper.Quick, aces.Filename)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("same-key ACESBuild returned distinct builds")
	}
}

// TestCacheDifferentKeysMiss: a different strategy (or scale) is a
// different key and compiles its own fresh instance.
func TestCacheDifferentKeysMiss(t *testing.T) {
	c := exper.NewCache()
	app := exper.AppsFor(exper.Quick)[0]

	a1, err := c.ACESBuild(app, exper.Quick, aces.Filename)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.ACESBuild(app, exper.Quick, aces.FilenameNoOpt)
	if err != nil {
		t.Fatal(err)
	}
	if a1 == a2 {
		t.Error("different strategies returned the same build")
	}
	if a1.Mod == a2.Mod {
		t.Error("different strategies share one module instance")
	}
	if got := c.Misses(); got != 2 {
		t.Errorf("misses = %d for two distinct keys, want 2", got)
	}

	o1, err := c.OPECBuild(app, exper.Quick)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := c.OPECBuild(app, exper.Full)
	if err != nil {
		t.Fatal(err)
	}
	if o1 == o2 || o1.Mod == o2.Mod {
		t.Error("different scales share a build or module")
	}
}

// TestCacheConcurrentSingleCompile: concurrent Gets of one key compile
// exactly once and every caller observes the identical pointer.
func TestCacheConcurrentSingleCompile(t *testing.T) {
	c := exper.NewCache()
	app := exper.AppsFor(exper.Quick)[0]

	const goroutines = 16
	builds := make([]*core.Build, goroutines)
	errs := make([]error, goroutines)
	var start, done sync.WaitGroup
	start.Add(1)
	for i := 0; i < goroutines; i++ {
		i := i
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait() // maximize contention on the one key
			builds[i], errs[i] = c.OPECBuild(app, exper.Quick)
		}()
	}
	start.Done()
	done.Wait()

	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if builds[i] != builds[0] {
			t.Fatalf("goroutine %d observed a different build pointer", i)
		}
	}
	if got := c.Misses(); got != 1 {
		t.Errorf("misses = %d under %d concurrent Gets, want exactly 1 compile", got, goroutines)
	}
}

// TestCacheRunReusesBuild: a memoized run boots the cached build (the
// Result's Build pointer is the cache's) and is itself memoized.
func TestCacheRunReusesBuild(t *testing.T) {
	c := exper.NewCache()
	app := exper.AppsFor(exper.Quick)[0]

	b, err := c.OPECBuild(app, exper.Quick)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := c.OPECRun(app, exper.Quick)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Build != b {
		t.Error("OPECRun compiled its own build instead of reusing the cached one")
	}
	r2, err := c.OPECRun(app, exper.Quick)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Error("same-key OPECRun returned distinct results")
	}
}

// TestHarnessParallelByteIdentical: the full rendered sweep is
// byte-identical between a serial harness and a deeply parallel one —
// the experiments' result assembly is index-addressed, so worker
// scheduling can never reorder output.
func TestHarnessParallelByteIdentical(t *testing.T) {
	render := func(h *exper.Harness) string {
		t1, err := h.Table1(exper.Quick)
		if err != nil {
			t.Fatal(err)
		}
		f9, err := h.Figure9(exper.Quick)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := h.Table2(exper.Quick)
		if err != nil {
			t.Fatal(err)
		}
		f10, err := h.Figure10(exper.Quick)
		if err != nil {
			t.Fatal(err)
		}
		f11, err := h.Figure11(exper.Quick)
		if err != nil {
			t.Fatal(err)
		}
		t3, err := h.Table3(exper.Quick)
		if err != nil {
			t.Fatal(err)
		}
		return exper.RenderTable1(t1) + exper.RenderFigure9(f9) +
			exper.RenderTable2(t2) + exper.RenderFigure10(f10) +
			exper.RenderFigure11(f11) + exper.RenderTable3(t3)
	}

	serial := render(exper.NewHarness(1))
	parallel := render(exper.NewHarness(8))
	if serial != parallel {
		t.Errorf("parallel sweep output differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
}
