package exper

import (
	"testing"

	"opec/internal/monitor"
)

// The fork engine's acceptance invariant: a seeded campaign forked
// from per-row snapshots renders a byte-identical verdict table — and
// identical per-trial verdicts, error strings, cycle counts and
// recovery counters — against the power-on boot engine, at parallelism
// 1 and at full parallelism.
func TestInjectForkMatchesBoot(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign replays every workload in -short mode")
	}
	cfg := tinyCampaign(3)
	pol := monitor.Policy{}
	boot, err := NewHarness(0).InjectWith(Quick, cfg, pol, EngineBoot)
	if err != nil {
		t.Fatal(err)
	}
	bootTable := RenderInject(boot)

	for _, parallel := range []int{1, 0} {
		fork, err := NewHarness(parallel).InjectWith(Quick, cfg, pol, EngineFork)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		if got := RenderInject(fork); got != bootTable {
			t.Errorf("parallel=%d: fork table differs from boot table:\n--- boot ---\n%s--- fork ---\n%s",
				parallel, bootTable, got)
		}
		if len(fork) != len(boot) {
			t.Fatalf("parallel=%d: %d fork rows vs %d boot rows", parallel, len(fork), len(boot))
		}
		for i := range fork {
			fr, br := fork[i], boot[i]
			if fr.SnapID == "" {
				t.Errorf("%s/%s: fork row has no snapshot id", fr.App, fr.Scheme)
			}
			if len(fr.Outcomes) != len(br.Outcomes) {
				t.Fatalf("%s/%s: %d fork trials vs %d boot trials", fr.App, fr.Scheme, len(fr.Outcomes), len(br.Outcomes))
			}
			for k := range fr.Outcomes {
				fo, bo := fr.Outcomes[k], br.Outcomes[k]
				if fo.Verdict != bo.Verdict || fo.Err != bo.Err || fo.Cycles != bo.Cycles ||
					fo.Restarts != bo.Restarts || fo.Quarantines != bo.Quarantines ||
					fo.RestartCycles != bo.RestartCycles {
					t.Errorf("%s/%s trial %s: fork %+v != boot %+v",
						fr.App, fr.Scheme, fo.Spec, fo, bo)
				}
			}
		}
	}
}
