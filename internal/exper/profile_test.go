package exper

import (
	"strings"
	"testing"

	"opec/internal/monitor"
)

// TestProfileSwitchModel checks the profiler's attribution against the
// monitor's modeled gate cost: on clean MPU-backend runs every
// activation is one enter+exit round trip, so the switch bucket per
// activation must land within 5% of monitor.ModeledSwitchCycles.
func TestProfileSwitchModel(t *testing.T) {
	rows, err := NewHarness(0).Profile(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(AppsFor(Quick)) {
		t.Fatalf("got %d profile rows, want %d", len(rows), len(AppsFor(Quick)))
	}
	model := float64(monitor.ModeledSwitchCycles)
	for _, r := range rows {
		if r.Events == 0 {
			t.Errorf("%s: no events traced", r.App)
		}
		if r.Activations == 0 {
			continue // workload never leaves the default operation
		}
		if r.SwitchPerActivation < 0.95*model || r.SwitchPerActivation > 1.05*model {
			t.Errorf("%s: switch cycles/activation = %.2f, want within 5%% of %v",
				r.App, r.SwitchPerActivation, monitor.ModeledSwitchCycles)
		}
	}
}

// TestProfileBucketsPartitionOverhead checks that the per-domain wall
// segments cover the whole run and the rendered table carries every
// domain.
func TestProfileBucketsPartitionOverhead(t *testing.T) {
	rows, err := NewHarness(0).Profile(Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		var wall uint64
		for _, op := range r.Detail.Ops {
			wall += op.WallCycles
			if op.MonitorCycles() > op.WallCycles {
				t.Errorf("%s/%s: monitor cycles %d exceed wall %d",
					r.App, op.Op, op.MonitorCycles(), op.WallCycles)
			}
		}
		// Attribution starts at the first activation, so the only
		// uncovered cycles are the monitor's boot sequence.
		if wall > r.Cycles {
			t.Errorf("%s: wall segments sum to %d, more than the run's %d cycles", r.App, wall, r.Cycles)
		} else if gap := r.Cycles - wall; gap > 4096 {
			t.Errorf("%s: %d cycles unattributed, more than a boot sequence", r.App, gap)
		}
		text := RenderProfile([]ProfileRow{r})
		for _, op := range r.Detail.Ops {
			if !strings.Contains(text, op.Op) {
				t.Errorf("%s: rendered profile missing domain %q", r.App, op.Op)
			}
		}
	}
}
