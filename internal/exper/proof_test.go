package exper

import (
	"testing"

	"opec/internal/core"
	"opec/internal/mach"
)

// TestProofTransparency is the acceptance check for proof-guided
// MPU-check elision: with certificate consumption disabled
// (OPEC_MACH_NOPROOF semantics), every rendered experiment table must be
// byte-identical and every run's final cycle count value-identical to
// the eliding sweep. Proofs may buy wall-clock time only — never
// architected behavior.
func TestProofTransparency(t *testing.T) {
	if testing.Short() {
		t.Skip("full double sweep in -short mode")
	}
	saved := mach.DisableProofs
	defer func() { mach.DisableProofs = saved }()

	mach.DisableProofs = false
	elideOut, elideCycles := sweepAll(t, Quick)
	mach.DisableProofs = true
	checkOut, checkCycles := sweepAll(t, Quick)

	if elideOut != checkOut {
		t.Errorf("rendered experiment output differs with proofs disabled:\n--- eliding ---\n%s\n--- checked ---\n%s", elideOut, checkOut)
	}
	for k, e := range elideCycles {
		if c := checkCycles[k]; e != c {
			t.Errorf("%s: final cycles = %d eliding vs %d checked", k, e, c)
		}
	}
	if len(elideCycles) == 0 {
		t.Fatal("no per-run cycle counts compared")
	}
}

// TestProofParanoidSweep re-runs the experiment sweep with every elided
// access re-adjudicated through the full protection check
// (OPEC_MACH_PARANOID semantics): any disagreement between a static
// certificate and the dynamic verdict panics inside the interpreter and
// fails the sweep — the differential soundness check for the proof
// engine, across every workload and scheme the harness exercises.
func TestProofParanoidSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full paranoid sweep in -short mode")
	}
	savedP, savedD := mach.ParanoidProofs, mach.DisableProofs
	defer func() { mach.ParanoidProofs, mach.DisableProofs = savedP, savedD }()
	mach.ParanoidProofs, mach.DisableProofs = true, false

	sweepAll(t, Quick)
}

// TestProofCoverageFloor pins the proof engine's precision acceptance
// floor: at least five of the seven workloads must certify at least
// half of their static memory accesses, and no build may contain a
// provably-faulting (rejected) access.
func TestProofCoverageFloor(t *testing.T) {
	covered, total := 0, 0
	for _, app := range AppsFor(Quick) {
		inst := app.New()
		b, err := core.Compile(inst.Mod, inst.Board, inst.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		if b.Proofs == nil {
			t.Fatalf("%s: build has no proof result", app.Name)
		}
		static, proven, rejected := b.Proofs.Static(), b.Proofs.Proven(), b.Proofs.Rejected()
		if static == 0 {
			t.Fatalf("%s: no static accesses analyzed", app.Name)
		}
		if rejected != 0 {
			t.Errorf("%s: %d provably-faulting accesses", app.Name, rejected)
		}
		cov := 100 * float64(proven) / float64(static)
		t.Logf("%s: static=%d proven=%d coverage=%.1f%%", app.Name, static, proven, cov)
		total++
		if cov >= 50 {
			covered++
		}
	}
	if total != 7 {
		t.Fatalf("workload count = %d, want 7", total)
	}
	if covered < 5 {
		t.Errorf("proof coverage >= 50%% on %d of %d workloads, want >= 5", covered, total)
	}
}
