package exper

import (
	"fmt"

	"opec/internal/fuzz"
	"opec/internal/monitor"
)

// The adversarial fuzzing experiment: a coverage-guided campaign
// (internal/fuzz) against the frame-queue workload's network stack and
// the SVC gate surface, with a random ablation proving what coverage
// feedback buys. Campaigns fork every input from the pre-injection
// checkpoint and are byte-identical at any parallelism and on either
// execution backend, so the guided-vs-random edge inequality recorded
// in BENCH_mach.json is a deterministic fact of (seed, budget), not a
// statistical claim.

// FuzzSeed and FuzzBudget are the standard campaign shape: the budget
// is large enough for guided retention to compound multi-frame
// scenarios past the random ablation (guidance needs a few corpus
// generations before it pays off), small enough for CI. BENCH v7
// records and validates the strict edge inequality at exactly this
// shape.
const (
	FuzzSeed   int64 = 3
	FuzzBudget       = 192
)

// Fuzz runs one fuzzing campaign — guided, or the random ablation —
// against the scale's frame-queue workload (TCP-Echo, the only
// workload scripting a network receive queue) at the harness's
// parallelism. backend "" selects the process-wide default.
func (h *Harness) Fuzz(s AppSet, seed int64, budget int, random bool, pol monitor.Policy, backend string) (*fuzz.Report, error) {
	for _, app := range AppsFor(s) {
		if app.Name == "TCP-Echo" {
			return fuzz.Run(fuzz.Options{
				App: app, Seed: seed, Budget: budget, Parallel: h.parallel,
				Random: random, Policy: pol, Backend: backend,
			})
		}
	}
	return nil, fmt.Errorf("fuzz: scale has no frame-queue workload")
}

// RenderFuzz prints a campaign summary.
func RenderFuzz(r *fuzz.Report) string { return r.Render() }
