package exper

import (
	"runtime"
	"sync"
)

// Harness runs the evaluation's experiments over a shared build cache
// with a bounded worker pool. One harness per sweep is the intended
// shape: `opec-bench -exp all` builds a single harness so Table 2 finds
// Figure 9's vanilla and OPEC runs already memoized, Figure 11 finds
// Figure 10's ACES builds, and so on.
//
// Per-app work fans out over the pool, but results are always written
// into index-addressed slots and reassembled in the fixed application
// order, so rendered tables are byte-identical at every parallelism
// level (including 1).
type Harness struct {
	// Cache is the harness's build cache, shared by every experiment
	// method. Exposed so callers can inspect hit behaviour.
	Cache *Cache

	parallel int
}

// NewHarness returns a harness with an empty cache running at most
// parallel concurrent per-app jobs; parallel <= 0 selects GOMAXPROCS.
func NewHarness(parallel int) *Harness {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	return &Harness{Cache: NewCache(), parallel: parallel}
}

// Parallel returns the harness's worker limit.
func (h *Harness) Parallel() int { return h.parallel }

// forEach runs fn(i) for every i in [0, n) on up to h.parallel workers
// and waits for all of them. All n jobs run even when one fails; the
// returned error is the lowest-index failure, so the reported error is
// the same at every parallelism level.
func (h *Harness) forEach(n int, fn func(i int) error) error {
	p := h.parallel
	if p > n {
		p = n
	}
	errs := make([]error, n)
	if p <= 1 {
		for i := 0; i < n; i++ {
			errs[i] = fn(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < p; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					errs[i] = fn(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
