package exper

// The build cache. Every experiment of the evaluation needs some
// combination of compiled artifacts and finished runs over the same
// seven workloads — the matrix is (app × scheme × scale), and before
// the cache existed a full `opec-bench -exp all` sweep compiled the
// same workload under the same scheme dozens of times (Table 2 and
// Figure 9 both run vanilla and OPEC; Figures 10/11 and Tables 1/3 all
// recompile the OPEC build; the three ACES strategies appear in three
// experiments each).
//
// Cache memoizes one artifact per key and is safe for concurrent use:
// the harness worker pool issues Gets from many goroutines, and a
// per-entry sync.Once guarantees each key compiles (and runs) exactly
// once, with every caller receiving the identical pointer.
//
// Sharing is sound because the cache owns a fresh App.New() instance
// per key: core.Compile and aces.Compile mutate the input ir.Module
// (OPEC's entry-site instrumentation rewrites calls into SVCs), so a
// module may be compiled at most once, and a vanilla build must never
// see a module another scheme compiled. Builds are immutable once
// compiled, and a memoized run happens at most once per key, so the
// instance's devices are always in their power-on state when the run
// starts.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"opec/internal/aces"
	"opec/internal/apps"
	"opec/internal/core"
	"opec/internal/metrics"
	"opec/internal/run"
	"opec/internal/trace"
)

// cacheKey identifies one artifact of the evaluation matrix.
type cacheKey struct {
	app    string
	scale  AppSet
	scheme string // "vanilla" | "opec" | "aces:<strategy>", "+run" suffix for executed runs, "trace"
}

// cacheEntry holds one memoized artifact. The sync.Once is the
// compile-exactly-once guarantee under concurrent Gets.
type cacheEntry struct {
	once sync.Once
	val  interface{}
	err  error
}

// Cache memoizes compiled builds, finished runs and task traces keyed
// by (application, scheme, scale). The zero value is not usable; call
// NewCache.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry

	// misses counts entry constructions — the number of actual
	// compiles/runs performed, regardless of how many Gets raced.
	misses atomic.Int64
}

// NewCache returns an empty build cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[cacheKey]*cacheEntry)}
}

// Misses returns how many artifacts were actually built (cache-filling
// work); Gets beyond the first per key do not increment it.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// get returns the memoized artifact for k, building it on first use.
// Concurrent calls for one key block on the same sync.Once and all
// observe the identical value.
func (c *Cache) get(k cacheKey, build func() (interface{}, error)) (interface{}, error) {
	c.mu.Lock()
	e := c.entries[k]
	if e == nil {
		e = &cacheEntry{}
		c.entries[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		c.misses.Add(1)
		e.val, e.err = build()
	})
	return e.val, e.err
}

// opecArtifact pairs an OPEC build with the instance it compiled, so a
// later memoized run can boot the build with the instance's devices.
type opecArtifact struct {
	inst *apps.Instance
	b    *core.Build
}

// acesArtifact is opecArtifact's ACES counterpart.
type acesArtifact struct {
	inst *apps.Instance
	b    *aces.Build
}

func (c *Cache) opecArtifact(app *apps.App, s AppSet) (*opecArtifact, error) {
	v, err := c.get(cacheKey{app: app.Name, scale: s, scheme: "opec"}, func() (interface{}, error) {
		inst := app.New()
		b, err := core.Compile(inst.Mod, inst.Board, inst.Cfg)
		if err != nil {
			return nil, fmt.Errorf("compile %s under OPEC: %w", app.Name, err)
		}
		return &opecArtifact{inst: inst, b: b}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*opecArtifact), nil
}

// OPECBuild returns the memoized OPEC compile of app at scale s.
func (c *Cache) OPECBuild(app *apps.App, s AppSet) (*core.Build, error) {
	a, err := c.opecArtifact(app, s)
	if err != nil {
		return nil, err
	}
	return a.b, nil
}

// OPECRun returns the memoized OPEC execution of app at scale s,
// reusing the cached build. The instance's correctness check runs once
// after the first execution; a check failure is memoized as the key's
// error.
func (c *Cache) OPECRun(app *apps.App, s AppSet) (*run.Result, error) {
	v, err := c.get(cacheKey{app: app.Name, scale: s, scheme: "opec+run"}, func() (interface{}, error) {
		a, err := c.opecArtifact(app, s)
		if err != nil {
			return nil, err
		}
		res, err := run.OPECPrecompiled(a.inst, a.b)
		if err != nil {
			return nil, fmt.Errorf("run %s under OPEC: %w", app.Name, err)
		}
		if err := run.AndCheck(a.inst, res); err != nil {
			return nil, fmt.Errorf("check %s under OPEC: %w", app.Name, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*run.Result), nil
}

// VanillaRun returns the memoized baseline execution of app at scale s,
// checked once.
func (c *Cache) VanillaRun(app *apps.App, s AppSet) (*run.Result, error) {
	v, err := c.get(cacheKey{app: app.Name, scale: s, scheme: "vanilla+run"}, func() (interface{}, error) {
		inst := app.New()
		res, err := run.Vanilla(inst)
		if err != nil {
			return nil, fmt.Errorf("run %s vanilla: %w", app.Name, err)
		}
		if err := run.AndCheck(inst, res); err != nil {
			return nil, fmt.Errorf("check %s vanilla: %w", app.Name, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*run.Result), nil
}

func (c *Cache) acesArtifact(app *apps.App, s AppSet, strat aces.Strategy) (*acesArtifact, error) {
	v, err := c.get(cacheKey{app: app.Name, scale: s, scheme: "aces:" + strat.String()}, func() (interface{}, error) {
		inst := app.New()
		b, err := aces.Compile(inst.Mod, inst.Board, strat)
		if err != nil {
			return nil, fmt.Errorf("compile %s under %v: %w", app.Name, strat, err)
		}
		return &acesArtifact{inst: inst, b: b}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*acesArtifact), nil
}

// ACESBuild returns the memoized ACES compile of app under strat.
func (c *Cache) ACESBuild(app *apps.App, s AppSet, strat aces.Strategy) (*aces.Build, error) {
	a, err := c.acesArtifact(app, s, strat)
	if err != nil {
		return nil, err
	}
	return a.b, nil
}

// ACESRun returns the memoized ACES execution of app under strat,
// reusing the cached build.
func (c *Cache) ACESRun(app *apps.App, s AppSet, strat aces.Strategy) (*run.Result, error) {
	v, err := c.get(cacheKey{app: app.Name, scale: s, scheme: "aces:" + strat.String() + "+run"}, func() (interface{}, error) {
		a, err := c.acesArtifact(app, s, strat)
		if err != nil {
			return nil, err
		}
		res, err := run.ACESPrecompiled(a.inst, a.b)
		if err != nil {
			return nil, fmt.Errorf("run %s under %v: %w", app.Name, strat, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*run.Result), nil
}

// profileArtifact pairs a traced OPEC run with its event buffer and
// finished per-operation profile.
type profileArtifact struct {
	res  *run.Result
	buf  *trace.Buffer
	prof *trace.Profile
}

// ProfileRun returns the memoized traced-and-profiled OPEC execution of
// app at scale s. It compiles and runs a fresh instance rather than
// reusing the plain "opec+run" artifact: attaching a trace mid-flight
// would miss boot events, and a memoized run happens only once.
func (c *Cache) ProfileRun(app *apps.App, s AppSet) (*run.Result, *trace.Buffer, *trace.Profile, error) {
	v, err := c.get(cacheKey{app: app.Name, scale: s, scheme: "opec+profile"}, func() (interface{}, error) {
		inst := app.New()
		b, err := core.Compile(inst.Mod, inst.Board, inst.Cfg)
		if err != nil {
			return nil, fmt.Errorf("compile %s under OPEC: %w", app.Name, err)
		}
		buf := trace.NewBuffer(0)
		prof := trace.NewProfiler(buf)
		res, err := run.OPECWith(inst, b, run.Options{Trace: buf})
		if err != nil {
			return nil, fmt.Errorf("profile %s under OPEC: %w", app.Name, err)
		}
		if err := run.AndCheck(inst, res); err != nil {
			return nil, fmt.Errorf("check %s under OPEC: %w", app.Name, err)
		}
		return &profileArtifact{res: res, buf: buf, prof: prof.Finish(res.Cycles)}, nil
	})
	if err != nil {
		return nil, nil, nil, err
	}
	a := v.(*profileArtifact)
	return a.res, a.buf, a.prof, nil
}

// Trace returns the memoized task trace of app at scale s. The trace
// runs a vanilla build of its own fresh instance (tracing must see the
// uninstrumented module), so it never shares an instance with the
// other schemes.
func (c *Cache) Trace(app *apps.App, s AppSet) (*metrics.TaskTrace, error) {
	v, err := c.get(cacheKey{app: app.Name, scale: s, scheme: "trace"}, func() (interface{}, error) {
		inst := app.New()
		tr, err := metrics.TraceTasks(inst)
		if err != nil {
			return nil, fmt.Errorf("trace %s: %w", app.Name, err)
		}
		return tr, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*metrics.TaskTrace), nil
}
