package exper

import (
	"strings"
	"testing"
)

func TestBenchReportRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("full timed sweep in -short mode")
	}
	rep, err := CollectBench(Quick, 1)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalBenchReport(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ValidateBenchReport(data)
	if err != nil {
		t.Fatalf("self-produced report fails validation: %v", err)
	}
	if got.Scale != "quick" || got.Schema != BenchSchema {
		t.Errorf("report header = %q/%q", got.Schema, got.Scale)
	}
	// 7 workloads × {vanilla, opec} + 5 × aces.
	if len(rep.Workloads) != 19 {
		t.Errorf("workload count = %d, want 19", len(rep.Workloads))
	}
	for _, w := range rep.Workloads {
		if w.SimMIPS <= 0 {
			t.Errorf("%s/%s: SimMIPS = %v", w.App, w.Scheme, w.SimMIPS)
		}
	}
	if len(rep.Experiments) != 7 {
		t.Errorf("experiment count = %d, want 7", len(rep.Experiments))
	}
}

func TestValidateBenchReportRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"garbage", "{not json", "bench report"},
		{"wrong schema", `{"schema":"other/v0","scale":"quick"}`, "schema"},
		{"bad scale", `{"schema":"` + BenchSchema + `","scale":"huge"}`, "scale"},
		{"empty", `{"schema":"` + BenchSchema + `","scale":"quick"}`, "missing workload"},
	}
	for _, c := range cases {
		if _, err := ValidateBenchReport([]byte(c.doc)); err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error = %v, want containing %q", c.name, err, c.wantErr)
		}
	}
}
