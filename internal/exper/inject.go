package exper

import (
	"fmt"
	"hash/fnv"
	"strings"

	"opec/internal/aces"
	"opec/internal/apps"
	"opec/internal/inject"
	"opec/internal/monitor"
	"opec/internal/trace"
)

// The fault-injection campaign experiment: every workload's seeded
// trial catalogue (internal/inject) replayed under OPEC with a chosen
// recovery policy and under the merged-region ACES configuration
// (ACES-2, the §6.1 over-privilege vector), aggregated into one
// containment row per workload × scheme. Trials are symbolic specs, so
// a campaign at one seed is exactly reproducible and any row's first
// escape can be replayed alone with `opec-run -inject`.

// InjectRow aggregates one workload × scheme leg of a campaign.
type InjectRow struct {
	App    string `json:"app"`
	Scheme string `json:"scheme"` // "OPEC" | "ACES-2"
	Policy string `json:"policy"` // OPEC recovery policy; "-" under ACES
	Trials int    `json:"trials"`
	// Counts histograms the trial verdicts, indexed by inject.Verdict.
	Counts [inject.NumVerdicts]int `json:"counts"`
	// Restarts/Quarantines total the recovery-policy activity.
	Restarts    uint64 `json:"restarts"`
	Quarantines uint64 `json:"quarantines"`
	// FirstEscape is the replay spec of the row's first escaped trial
	// (`opec-run -inject <spec>` reproduces it), empty when contained.
	FirstEscape string `json:"first_escape,omitempty"`
	// SnapID is the pre-injection checkpoint identity when the row ran
	// on the fork engine (empty on the power-on engine). Any trial of
	// the row replays exactly from `snap id + spec`:
	// `opec-run -replay '<snap_id>@<spec>'`.
	SnapID string `json:"snap_id,omitempty"`
	// Outcomes holds the row's per-trial outcomes in planning order —
	// the fork-vs-boot differential compares them trial by trial. Not
	// serialized: the aggregate fields above are the reportable result.
	Outcomes []inject.Outcome `json:"-"`
}

// Count returns the number of trials with verdict v.
func (r *InjectRow) Count(v inject.Verdict) int { return r.Counts[v] }

// Escapes returns the row's escaped-trial count.
func (r *InjectRow) Escapes() int { return r.Counts[inject.Escaped] }

// Counters implements trace.CounterSource: the row's verdict histogram
// and recovery activity under dotted names, for the unified registry.
func (r *InjectRow) Counters() []trace.Counter {
	prefix := "inject." + strings.ToLower(r.Scheme) + "."
	out := make([]trace.Counter, 0, inject.NumVerdicts+2)
	for v := 0; v < inject.NumVerdicts; v++ {
		out = append(out, trace.Counter{
			Name:  prefix + inject.Verdict(v).String(),
			Value: uint64(r.Counts[v]),
		})
	}
	out = append(out,
		trace.Counter{Name: prefix + "restarts", Value: r.Restarts},
		trace.Counter{Name: prefix + "quarantines", Value: r.Quarantines},
	)
	return out
}

// Contained returns the number of trials whose verdict kept the fault
// inside its domain.
func (r *InjectRow) Contained() int {
	n := 0
	for v := 0; v < inject.NumVerdicts; v++ {
		if inject.Verdict(v).Contained() {
			n += r.Counts[v]
		}
	}
	return n
}

// InjectEngine selects how a campaign executes its trials.
type InjectEngine int

// Campaign engines.
const (
	// EngineFork boots each (workload, scheme) row once, checkpoints at
	// the pre-injection point, and forks every trial from the snapshot.
	// This is the default: per-trial cost drops from
	// construct+compile+prove+boot+run to restore+run.
	EngineFork InjectEngine = iota
	// EngineBoot builds every trial from power-on — the reference
	// semantics. The differential smoke proves EngineFork renders a
	// byte-identical table against it.
	EngineBoot
)

func (e InjectEngine) String() string {
	if e == EngineBoot {
		return "boot"
	}
	return "fork"
}

// rowPlan is one workload × scheme leg: its aggregate row plus the
// exact trial list and per-trial budget, fixed at planning time.
type rowPlan struct {
	row    InjectRow
	app    *apps.App
	aces   bool
	budget uint64
	specs  []inject.Spec
}

// Inject runs the fault-injection campaign on the fork engine: all
// workloads under OPEC with the given recovery policy, plus the five
// comparison workloads under ACES-2 against the identical trial list
// (minus gate trials, which ACES cannot express).
func (h *Harness) Inject(s AppSet, cfg inject.Config, pol monitor.Policy) ([]InjectRow, error) {
	return h.InjectWith(s, cfg, pol, EngineFork)
}

// InjectWith is Inject with an explicit trial engine. Each workload
// plans from its own seed-derived sub-generator, so the campaign is
// deterministic per (seed, scale) and insensitive to harness
// parallelism — and, by the forge's byte-identity contract, to the
// engine: both engines render the same table. Trials run on a 4×
// budget of the workload's clean-run cycles, bounding hung runs.
func (h *Harness) InjectWith(s AppSet, cfg inject.Config, pol monitor.Policy, engine InjectEngine) ([]InjectRow, error) {
	plans, err := h.planInject(s, cfg, pol)
	if err != nil {
		return nil, err
	}
	if engine == EngineBoot {
		err = h.runInjectBoot(plans, pol)
	} else {
		err = h.runInjectFork(plans, pol)
	}
	if err != nil {
		return nil, err
	}
	return aggregateInject(plans), nil
}

// aggregateInject folds each plan's per-trial outcomes into its row,
// in planning order — rows are identical at every parallelism level
// and on either engine.
func aggregateInject(plans []*rowPlan) []InjectRow {
	rows := make([]InjectRow, len(plans))
	for i := range plans {
		r := plans[i].row
		for _, o := range r.Outcomes {
			r.Counts[o.Verdict]++
			r.Restarts += o.Restarts
			r.Quarantines += o.Quarantines
			if o.Verdict == inject.Escaped && r.FirstEscape == "" {
				r.FirstEscape = o.Spec.String()
			}
		}
		rows[i] = r
	}
	return rows
}

// planInject fixes the campaign's rows, trial lists and budgets.
func (h *Harness) planInject(s AppSet, cfg inject.Config, pol monitor.Policy) ([]*rowPlan, error) {
	var plans []*rowPlan
	acesSet := make(map[string]bool)
	for _, app := range acesAppsFor(s) {
		acesSet[app.Name] = true
	}
	for _, app := range AppsFor(s) {
		a, err := h.Cache.opecArtifact(app, s)
		if err != nil {
			return nil, fmt.Errorf("inject: %w", err)
		}
		appCfg := cfg
		appCfg.Seed = subSeed(cfg.Seed, app.Name)
		specs := inject.Plan(a.b, a.inst.Devices, appCfg)

		ro, err := h.Cache.OPECRun(app, s)
		if err != nil {
			return nil, fmt.Errorf("inject: %w", err)
		}
		plans = append(plans, &rowPlan{
			row: InjectRow{
				App: app.Name, Scheme: "OPEC",
				Policy: pol.Kind.String(), Trials: len(specs),
			},
			app: app, budget: 4 * ro.Cycles, specs: specs,
		})

		if !acesSet[app.Name] {
			continue
		}
		ra, err := h.Cache.ACESRun(app, s, aces.FilenameNoOpt)
		if err != nil {
			return nil, fmt.Errorf("inject: %w", err)
		}
		ap := &rowPlan{
			row: InjectRow{App: app.Name, Scheme: "ACES-2", Policy: "-"},
			app: app, aces: true, budget: 4 * ra.Cycles,
		}
		for _, sp := range specs {
			if sp.Kind == inject.BadGate {
				continue
			}
			ap.row.Trials++
			ap.specs = append(ap.specs, sp)
		}
		plans = append(plans, ap)
	}
	return plans, nil
}

// runInjectBoot executes every trial from power-on, fanning the flat
// trial list over the worker pool.
func (h *Harness) runInjectBoot(plans []*rowPlan, pol monitor.Policy) error {
	type job struct {
		plan *rowPlan
		idx  int
	}
	var jobs []job
	for _, p := range plans {
		p.row.Outcomes = make([]inject.Outcome, len(p.specs))
		for i := range p.specs {
			jobs = append(jobs, job{plan: p, idx: i})
		}
	}
	return h.forEach(len(jobs), func(i int) error {
		j := jobs[i]
		sp := j.plan.specs[j.idx]
		var out inject.Outcome
		var err error
		if j.plan.aces {
			out, err = inject.RunACES(j.plan.app, sp, aces.FilenameNoOpt, j.plan.budget)
		} else {
			out, err = inject.RunOPEC(j.plan.app, sp, pol, j.plan.budget)
		}
		if err != nil {
			return fmt.Errorf("inject: %s trial %s: %w", j.plan.app.Name, sp, err)
		}
		j.plan.row.Outcomes[j.idx] = out
		return nil
	})
}

// runInjectFork executes each row on its own forge: boot once,
// checkpoint, fork every trial from the snapshot. Parallelism moves up
// a level — across rows rather than trials — because a forge's
// machine is inherently serial.
func (h *Harness) runInjectFork(plans []*rowPlan, pol monitor.Policy) error {
	return h.forEach(len(plans), func(i int) error {
		p := plans[i]
		var forge *inject.Forge
		var err error
		if p.aces {
			forge, err = inject.NewACESForge(p.app, aces.FilenameNoOpt)
		} else {
			forge, err = inject.NewForge(p.app)
		}
		if err != nil {
			return fmt.Errorf("inject: %s: %w", p.app.Name, err)
		}
		p.row.SnapID = forge.SnapshotID()
		p.row.Outcomes = make([]inject.Outcome, len(p.specs))
		for k, sp := range p.specs {
			var out inject.Outcome
			if p.aces {
				out, err = forge.Run(sp, monitor.Policy{}, p.budget)
			} else {
				out, err = forge.Run(sp, pol, p.budget)
			}
			if err != nil {
				return fmt.Errorf("inject: %s trial %s: %w", p.app.Name, sp, err)
			}
			p.row.Outcomes[k] = out
		}
		return nil
	})
}

// subSeed derives a workload's campaign seed, decoupling its trial
// sampling from every other workload's.
func subSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// RenderInject prints the campaign's containment table plus a replay
// line for every row that escaped.
func RenderInject(rows []InjectRow) string {
	var sb strings.Builder
	sb.WriteString("Fault injection: trial verdicts per workload (ESC = isolation escapes)\n")
	fmt.Fprintf(&sb, "%-11s %-7s %-10s %6s %6s %5s %5s %5s %5s %6s %7s %5s %4s %5s %5s %5s\n",
		"Application", "Scheme", "Policy", "Trials", "Untrig",
		"MPU", "Sani", "Gate", "Recov", "Benign", "Corrupt", "Hung", "ESC", "Crash",
		"Rst", "Quar")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-11s %-7s %-10s %6d %6d %5d %5d %5d %5d %6d %7d %5d %4d %5d %5d %5d\n",
			r.App, r.Scheme, r.Policy, r.Trials, r.Count(inject.Untriggered),
			r.Count(inject.ContainedMPU), r.Count(inject.ContainedSanitize),
			r.Count(inject.ContainedGate), r.Count(inject.Recovered),
			r.Count(inject.Benign), r.Count(inject.Corrupted),
			r.Count(inject.Hung), r.Escapes(), r.Count(inject.CrashedMonitor),
			r.Restarts, r.Quarantines)
	}
	for _, r := range rows {
		if r.FirstEscape != "" {
			fmt.Fprintf(&sb, "  replay first escape of %s/%s: opec-run -app %s -mode %s -inject '%s'\n",
				r.App, r.Scheme, r.App, replayMode(r.Scheme), r.FirstEscape)
		}
	}
	return sb.String()
}

func replayMode(scheme string) string {
	if scheme == "ACES-2" {
		return "aces2"
	}
	return "opec"
}
