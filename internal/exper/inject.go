package exper

import (
	"fmt"
	"hash/fnv"
	"strings"

	"opec/internal/aces"
	"opec/internal/apps"
	"opec/internal/inject"
	"opec/internal/monitor"
	"opec/internal/trace"
)

// The fault-injection campaign experiment: every workload's seeded
// trial catalogue (internal/inject) replayed under OPEC with a chosen
// recovery policy and under the merged-region ACES configuration
// (ACES-2, the §6.1 over-privilege vector), aggregated into one
// containment row per workload × scheme. Trials are symbolic specs, so
// a campaign at one seed is exactly reproducible and any row's first
// escape can be replayed alone with `opec-run -inject`.

// InjectRow aggregates one workload × scheme leg of a campaign.
type InjectRow struct {
	App    string `json:"app"`
	Scheme string `json:"scheme"` // "OPEC" | "ACES-2"
	Policy string `json:"policy"` // OPEC recovery policy; "-" under ACES
	Trials int    `json:"trials"`
	// Counts histograms the trial verdicts, indexed by inject.Verdict.
	Counts [inject.NumVerdicts]int `json:"counts"`
	// Restarts/Quarantines total the recovery-policy activity.
	Restarts    uint64 `json:"restarts"`
	Quarantines uint64 `json:"quarantines"`
	// FirstEscape is the replay spec of the row's first escaped trial
	// (`opec-run -inject <spec>` reproduces it), empty when contained.
	FirstEscape string `json:"first_escape,omitempty"`
}

// Count returns the number of trials with verdict v.
func (r *InjectRow) Count(v inject.Verdict) int { return r.Counts[v] }

// Escapes returns the row's escaped-trial count.
func (r *InjectRow) Escapes() int { return r.Counts[inject.Escaped] }

// Counters implements trace.CounterSource: the row's verdict histogram
// and recovery activity under dotted names, for the unified registry.
func (r *InjectRow) Counters() []trace.Counter {
	prefix := "inject." + strings.ToLower(r.Scheme) + "."
	out := make([]trace.Counter, 0, inject.NumVerdicts+2)
	for v := 0; v < inject.NumVerdicts; v++ {
		out = append(out, trace.Counter{
			Name:  prefix + inject.Verdict(v).String(),
			Value: uint64(r.Counts[v]),
		})
	}
	out = append(out,
		trace.Counter{Name: prefix + "restarts", Value: r.Restarts},
		trace.Counter{Name: prefix + "quarantines", Value: r.Quarantines},
	)
	return out
}

// Contained returns the number of trials whose verdict kept the fault
// inside its domain.
func (r *InjectRow) Contained() int {
	n := 0
	for v := 0; v < inject.NumVerdicts; v++ {
		if inject.Verdict(v).Contained() {
			n += r.Counts[v]
		}
	}
	return n
}

// Inject runs the fault-injection campaign: all workloads under OPEC
// with the given recovery policy, plus the five comparison workloads
// under ACES-2 against the identical trial list (minus gate trials,
// which ACES cannot express). Each workload plans from its own
// seed-derived sub-generator, so the campaign is deterministic per
// (seed, scale) and insensitive to harness parallelism. Trials run on
// a 4× budget of the workload's clean-run cycles, bounding hung runs.
func (h *Harness) Inject(s AppSet, cfg inject.Config, pol monitor.Policy) ([]InjectRow, error) {
	type job struct {
		row    int
		app    *apps.App
		spec   inject.Spec
		aces   bool
		budget uint64
	}
	var rows []InjectRow
	var jobs []job

	acesSet := make(map[string]bool)
	for _, app := range acesAppsFor(s) {
		acesSet[app.Name] = true
	}
	for _, app := range AppsFor(s) {
		a, err := h.Cache.opecArtifact(app, s)
		if err != nil {
			return nil, fmt.Errorf("inject: %w", err)
		}
		appCfg := cfg
		appCfg.Seed = subSeed(cfg.Seed, app.Name)
		specs := inject.Plan(a.b, a.inst.Devices, appCfg)

		ro, err := h.Cache.OPECRun(app, s)
		if err != nil {
			return nil, fmt.Errorf("inject: %w", err)
		}
		row := len(rows)
		rows = append(rows, InjectRow{
			App: app.Name, Scheme: "OPEC",
			Policy: pol.Kind.String(), Trials: len(specs),
		})
		for _, sp := range specs {
			jobs = append(jobs, job{row: row, app: app, spec: sp, budget: 4 * ro.Cycles})
		}

		if !acesSet[app.Name] {
			continue
		}
		ra, err := h.Cache.ACESRun(app, s, aces.FilenameNoOpt)
		if err != nil {
			return nil, fmt.Errorf("inject: %w", err)
		}
		row = len(rows)
		arow := InjectRow{App: app.Name, Scheme: "ACES-2", Policy: "-"}
		for _, sp := range specs {
			if sp.Kind == inject.BadGate {
				continue
			}
			arow.Trials++
			jobs = append(jobs, job{row: row, app: app, spec: sp, aces: true, budget: 4 * ra.Cycles})
		}
		rows = append(rows, arow)
	}

	outs := make([]inject.Outcome, len(jobs))
	err := h.forEach(len(jobs), func(i int) error {
		j := jobs[i]
		var out inject.Outcome
		var err error
		if j.aces {
			out, err = inject.RunACES(j.app, j.spec, aces.FilenameNoOpt, j.budget)
		} else {
			out, err = inject.RunOPEC(j.app, j.spec, pol, j.budget)
		}
		if err != nil {
			return fmt.Errorf("inject: %s trial %s: %w", j.app.Name, j.spec, err)
		}
		outs[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Aggregation follows job order, which is fixed at planning time —
	// rows are identical at every parallelism level.
	for i, j := range jobs {
		r := &rows[j.row]
		o := outs[i]
		r.Counts[o.Verdict]++
		r.Restarts += o.Restarts
		r.Quarantines += o.Quarantines
		if o.Verdict == inject.Escaped && r.FirstEscape == "" {
			r.FirstEscape = o.Spec.String()
		}
	}
	return rows, nil
}

// subSeed derives a workload's campaign seed, decoupling its trial
// sampling from every other workload's.
func subSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// RenderInject prints the campaign's containment table plus a replay
// line for every row that escaped.
func RenderInject(rows []InjectRow) string {
	var sb strings.Builder
	sb.WriteString("Fault injection: trial verdicts per workload (ESC = isolation escapes)\n")
	fmt.Fprintf(&sb, "%-11s %-7s %-10s %6s %6s %5s %5s %5s %5s %6s %7s %5s %4s %5s %5s %5s\n",
		"Application", "Scheme", "Policy", "Trials", "Untrig",
		"MPU", "Sani", "Gate", "Recov", "Benign", "Corrupt", "Hung", "ESC", "Crash",
		"Rst", "Quar")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-11s %-7s %-10s %6d %6d %5d %5d %5d %5d %6d %7d %5d %4d %5d %5d %5d\n",
			r.App, r.Scheme, r.Policy, r.Trials, r.Count(inject.Untriggered),
			r.Count(inject.ContainedMPU), r.Count(inject.ContainedSanitize),
			r.Count(inject.ContainedGate), r.Count(inject.Recovered),
			r.Count(inject.Benign), r.Count(inject.Corrupted),
			r.Count(inject.Hung), r.Escapes(), r.Count(inject.CrashedMonitor),
			r.Restarts, r.Quarantines)
	}
	for _, r := range rows {
		if r.FirstEscape != "" {
			fmt.Fprintf(&sb, "  replay first escape of %s/%s: opec-run -app %s -mode %s -inject '%s'\n",
				r.App, r.Scheme, r.App, replayMode(r.Scheme), r.FirstEscape)
		}
	}
	return sb.String()
}

func replayMode(scheme string) string {
	if scheme == "ACES-2" {
		return "aces2"
	}
	return "opec"
}
