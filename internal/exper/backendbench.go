package exper

import (
	"time"

	"opec/internal/apps"
	"opec/internal/ir"
	"opec/internal/mach"
	"opec/internal/run"
)

// This file produces the execution-backend section of BENCH_mach.json
// (schema v6): a translation-vs-interpreter A/B. The headline number is
// measured on a dispatch-bound workload — long unrolled pure-ALU blocks
// with independent lanes, the instruction mix the threaded-code engine
// exists to accelerate — because on the paper's application workloads
// the two backends are within noise of each other: those runs are
// dominated by adjudicated memory traffic, gate round-trips and call
// setup, which are architected effects both engines route through the
// same machine primitives (DESIGN.md §12 has the full breakdown). The
// per-app rows record exactly that, along with the cycle-identity bit
// the differential suite enforces.

// BackendSpeedupFloor is the validation gate on the dispatch-bound
// sweep: the translation engine must beat the interpreter by at least
// this factor. The committed baseline measures ~4.5-5×; the floor
// leaves margin for slower CI hosts.
const BackendSpeedupFloor = 2.5

// BenchBackendApp is one application workload's backend A/B under the
// OPEC scheme: one timed fresh run per backend.
type BenchBackendApp struct {
	App           string  `json:"app"`
	InterpSimMIPS float64 `json:"interp_sim_mips"`
	XlatSimMIPS   float64 `json:"xlat_sim_mips"`
	Speedup       float64 `json:"speedup"`
	// CyclesEqual records the exactness invariant: both backends
	// finished the workload at the same absolute cycle count.
	CyclesEqual bool `json:"cycles_equal"`
}

// BenchBackend is the execution-backend section (schema v6).
type BenchBackend struct {
	// Dispatch* is the dispatch-bound sweep: simulated instructions,
	// per-backend throughput (best of three timed runs each), and the
	// headline speedup gated by BackendSpeedupFloor.
	DispatchInstrs        uint64  `json:"dispatch_instrs"`
	DispatchInterpSimMIPS float64 `json:"dispatch_interp_sim_mips"`
	DispatchXlatSimMIPS   float64 `json:"dispatch_xlat_sim_mips"`
	DispatchSpeedup       float64 `json:"dispatch_speedup"`
	// Apps is the per-workload A/B at the report's scale.
	Apps []BenchBackendApp `json:"apps"`
}

// dispatchIters sizes the dispatch workload: ~64 simulated
// instructions per iteration keeps the timed region in the tens of
// milliseconds on the interpreter.
const dispatchIters = 50_000

// dispatchModule builds the dispatch-bound workload: a counted loop
// over 60 unrolled pure ALU operations in four independent lanes, so
// both the translated micro-op loop and the host core can overlap
// work — peak dispatch throughput, no memory traffic to dilute it
// beyond the loop-carried counter.
func dispatchModule() *ir.Module {
	m := ir.NewModule("dispatch")
	fb := ir.NewFunc(m, "main", "main.c", nil)
	loop := fb.NewBlock("loop")
	done := fb.NewBlock("done")
	iSlot := fb.Alloca(ir.I32)
	fb.Store(ir.I32, iSlot, ir.CI(0))
	fb.Br(loop)
	fb.SetBlock(loop)
	iv := fb.Load(ir.I32, iSlot)
	lanes := [4]*ir.Instr{iv, iv, iv, iv}
	for k := 0; k < 60; k++ {
		src := lanes[k%4]
		var r *ir.Instr
		switch k % 5 {
		case 0:
			r = fb.Add(src, ir.CI(uint32(k+3)))
		case 1:
			r = fb.Mul(src, ir.CI(5))
		case 2:
			r = fb.Xor(src, iv)
		case 3:
			r = fb.Shr(src, ir.CI(3))
		case 4:
			r = fb.Or(src, ir.CI(1))
		}
		lanes[k%4] = r
	}
	fold := fb.Xor(fb.Xor(lanes[0], lanes[1]), fb.Xor(lanes[2], lanes[3]))
	nx := fb.Add(iv, fb.Add(fb.And(fold, ir.CI(0)), ir.CI(1)))
	fb.Store(ir.I32, iSlot, nx)
	fb.CondBr(fb.Lt(nx, ir.CI(dispatchIters)), loop, done)
	fb.SetBlock(done)
	fb.Halt()
	fb.RetVoid()
	return m
}

// timeDispatch runs the dispatch workload on one backend and returns
// the best throughput of three fresh timed runs (fresh machine each
// time, so the translation cost is inside the measurement).
func timeDispatch(backend string) (instrs uint64, simMIPS float64, err error) {
	for rep := 0; rep < 3; rep++ {
		inst := &apps.Instance{
			Mod:       dispatchModule(),
			Board:     mach.STM32F4Discovery(),
			Clk:       &mach.Clock{},
			MaxCycles: 200_000_000,
		}
		start := time.Now()
		res, rerr := run.VanillaWith(inst, run.Options{Backend: backend})
		wall := time.Since(start).Seconds()
		if rerr != nil {
			return 0, 0, rerr
		}
		instrs = res.Machine.InstrCount
		if wall > 0 {
			if mips := float64(instrs) / wall / 1e6; mips > simMIPS {
				simMIPS = mips
			}
		}
	}
	return instrs, simMIPS, nil
}

// measureBackend collects the execution-backend section at scale s.
func measureBackend(s AppSet) (*BenchBackend, error) {
	bb := &BenchBackend{}
	instrs, interpMIPS, err := timeDispatch(run.BackendInterp)
	if err != nil {
		return nil, err
	}
	_, xlatMIPS, err := timeDispatch(run.BackendXlat)
	if err != nil {
		return nil, err
	}
	bb.DispatchInstrs = instrs
	bb.DispatchInterpSimMIPS = interpMIPS
	bb.DispatchXlatSimMIPS = xlatMIPS
	if interpMIPS > 0 {
		bb.DispatchSpeedup = xlatMIPS / interpMIPS
	}

	saved := run.DefaultBackend
	defer func() { run.DefaultBackend = saved }()
	for _, app := range AppsFor(s) {
		row := BenchBackendApp{App: app.Name}
		run.DefaultBackend = run.BackendInterp
		wi, err := benchOne(app.Name, "opec", func() (*run.Result, error) { return run.OPEC(app.New()) })
		if err != nil {
			return nil, err
		}
		run.DefaultBackend = run.BackendXlat
		wx, err := benchOne(app.Name, "opec", func() (*run.Result, error) { return run.OPEC(app.New()) })
		if err != nil {
			return nil, err
		}
		row.InterpSimMIPS, row.XlatSimMIPS = wi.SimMIPS, wx.SimMIPS
		row.CyclesEqual = wi.Cycles == wx.Cycles && wi.Instrs == wx.Instrs
		if wi.SimMIPS > 0 {
			row.Speedup = wx.SimMIPS / wi.SimMIPS
		}
		bb.Apps = append(bb.Apps, row)
	}
	return bb, nil
}
