package exper

import (
	"testing"

	"opec/internal/mach"
)

// sweepAll renders every experiment with one shared harness and returns
// the concatenated output plus the per-run cycle counts of the cached
// vanilla and OPEC executions of each workload.
func sweepAll(t *testing.T, s AppSet) (string, map[string]uint64) {
	t.Helper()
	h := NewHarness(1)
	out := ""

	t1, err := h.Table1(s)
	if err != nil {
		t.Fatal(err)
	}
	out += RenderTable1(t1)
	f9, err := h.Figure9(s)
	if err != nil {
		t.Fatal(err)
	}
	out += RenderFigure9(f9)
	t2, err := h.Table2(s)
	if err != nil {
		t.Fatal(err)
	}
	out += RenderTable2(t2)
	f10, err := h.Figure10(s)
	if err != nil {
		t.Fatal(err)
	}
	out += RenderFigure10(f10)
	f11, err := h.Figure11(s)
	if err != nil {
		t.Fatal(err)
	}
	out += RenderFigure11(f11)
	t3, err := h.Table3(s)
	if err != nil {
		t.Fatal(err)
	}
	out += RenderTable3(t3)

	cycles := make(map[string]uint64)
	for _, app := range AppsFor(s) {
		van, err := h.Cache.VanillaRun(app, s)
		if err != nil {
			t.Fatal(err)
		}
		cycles[app.Name+"/vanilla"] = van.Cycles
		op, err := h.Cache.OPECRun(app, s)
		if err != nil {
			t.Fatal(err)
		}
		cycles[app.Name+"/opec"] = op.Cycles
	}
	return out, cycles
}

// TestCacheTransparency is the acceptance check for the simulator's
// lookup caches (MPU micro-TLB, bus last-device cache): with the caches
// force-disabled, every rendered experiment table must be byte-identical
// and every run's final Clock.Now() value-identical to the cached-path
// sweep. Caches may buy wall-clock time only — never architected
// behavior.
func TestCacheTransparency(t *testing.T) {
	if testing.Short() {
		t.Skip("full double sweep in -short mode")
	}
	saved := mach.DisableCaches
	defer func() { mach.DisableCaches = saved }()

	mach.DisableCaches = false
	fastOut, fastCycles := sweepAll(t, Quick)
	mach.DisableCaches = true
	slowOut, slowCycles := sweepAll(t, Quick)

	if fastOut != slowOut {
		t.Errorf("rendered experiment output differs with caches disabled:\n--- cached ---\n%s\n--- uncached ---\n%s", fastOut, slowOut)
	}
	for k, fast := range fastCycles {
		if slow := slowCycles[k]; fast != slow {
			t.Errorf("%s: final Clock.Now() = %d cached vs %d uncached", k, fast, slow)
		}
	}
	if len(fastCycles) == 0 {
		t.Fatal("no per-run cycle counts compared")
	}
}
