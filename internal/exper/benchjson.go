package exper

import (
	"encoding/json"
	"fmt"
	"time"

	"opec/internal/aces"
	"opec/internal/run"
)

// This file produces the machine-readable simulator-throughput baseline
// (BENCH_mach.json). The report has two halves: per-workload simulated
// instruction throughput (one fresh, timed run per app × scheme, so no
// memoized result hides the simulator cost), and wall-clock timings for
// each experiment of a shared-harness sweep. Later PRs regenerate the
// file and compare against the committed baseline to keep the perf
// trajectory visible.

// BenchSchema identifies the report format; bump on breaking changes.
const BenchSchema = "opec-bench/mach/v1"

// BenchSchemes is the fixed execution-scheme order of the report.
var BenchSchemes = []string{"vanilla", "opec", "aces"}

// benchExperimentNames is the fixed harness-sweep order.
var benchExperimentNames = []string{"table1", "figure9", "table2", "figure10", "figure11", "table3"}

// BenchWorkload is one timed run of one app under one scheme.
type BenchWorkload struct {
	App         string  `json:"app"`
	Scheme      string  `json:"scheme"`
	Instrs      uint64  `json:"instrs"`
	Cycles      uint64  `json:"cycles"`
	WallSeconds float64 `json:"wall_seconds"`
	SimMIPS     float64 `json:"sim_mips"` // simulated instructions / wall second / 1e6
}

// BenchExperiment is the wall-clock cost of one experiment in a
// shared-harness sweep (cache-warm ordering matches opec-bench -exp all).
type BenchExperiment struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
}

// BenchReport is the top-level BENCH_mach.json document.
type BenchReport struct {
	Schema      string            `json:"schema"`
	Scale       string            `json:"scale"`
	Parallel    int               `json:"parallel"`
	Workloads   []BenchWorkload   `json:"workloads"`
	Experiments []BenchExperiment `json:"experiments"`
}

// CollectBench measures simulator throughput at scale s. Workload runs
// execute serially (each is individually timed); the experiment sweep
// uses a harness with the given parallelism, mirroring a normal
// opec-bench invocation.
func CollectBench(s AppSet, parallel int) (*BenchReport, error) {
	rep := &BenchReport{Schema: BenchSchema, Scale: scaleName(s), Parallel: parallel}

	acesSet := make(map[string]bool)
	for _, app := range acesAppsFor(s) {
		acesSet[app.Name] = true
	}
	for _, app := range AppsFor(s) {
		for _, scheme := range BenchSchemes {
			if scheme == "aces" && !acesSet[app.Name] {
				continue // ACES runs only the five comparison workloads
			}
			w, err := benchOne(app.Name, scheme, func() (*run.Result, error) {
				inst := app.New()
				switch scheme {
				case "vanilla":
					return run.Vanilla(inst)
				case "opec":
					return run.OPEC(inst)
				default:
					return run.ACES(inst, aces.Filename)
				}
			})
			if err != nil {
				return nil, fmt.Errorf("bench %s/%s: %w", app.Name, scheme, err)
			}
			rep.Workloads = append(rep.Workloads, w)
		}
	}

	h := NewHarness(parallel)
	for _, name := range benchExperimentNames {
		start := time.Now()
		var err error
		switch name {
		case "table1":
			_, err = h.Table1(s)
		case "figure9":
			_, err = h.Figure9(s)
		case "table2":
			_, err = h.Table2(s)
		case "figure10":
			_, err = h.Figure10(s)
		case "figure11":
			_, err = h.Figure11(s)
		case "table3":
			_, err = h.Table3(s)
		}
		if err != nil {
			return nil, fmt.Errorf("bench experiment %s: %w", name, err)
		}
		rep.Experiments = append(rep.Experiments, BenchExperiment{
			Name:        name,
			WallSeconds: time.Since(start).Seconds(),
		})
	}
	return rep, nil
}

// benchOne times a single fresh run and derives throughput.
func benchOne(app, scheme string, do func() (*run.Result, error)) (BenchWorkload, error) {
	start := time.Now()
	res, err := do()
	wall := time.Since(start).Seconds()
	if err != nil {
		return BenchWorkload{}, err
	}
	w := BenchWorkload{
		App:         app,
		Scheme:      scheme,
		Instrs:      res.Machine.InstrCount,
		Cycles:      res.Cycles,
		WallSeconds: wall,
	}
	if wall > 0 {
		w.SimMIPS = float64(w.Instrs) / wall / 1e6
	}
	return w, nil
}

func scaleName(s AppSet) string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// MarshalBenchReport renders the report as stable, indented JSON.
func MarshalBenchReport(rep *BenchReport) ([]byte, error) {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ValidateBenchReport parses data and checks it is a complete report:
// correct schema, every workload of its recorded scale present under
// every applicable scheme with positive throughput, and every
// experiment timed. opec-bench -validate and CI call this.
func ValidateBenchReport(data []byte) (*BenchReport, error) {
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench report: %w", err)
	}
	if rep.Schema != BenchSchema {
		return nil, fmt.Errorf("bench report: schema %q, want %q", rep.Schema, BenchSchema)
	}
	var scale AppSet
	switch rep.Scale {
	case "full":
		scale = Full
	case "quick":
		scale = Quick
	default:
		return nil, fmt.Errorf("bench report: unknown scale %q", rep.Scale)
	}

	have := make(map[string]BenchWorkload, len(rep.Workloads))
	for _, w := range rep.Workloads {
		have[w.App+"/"+w.Scheme] = w
	}
	acesSet := make(map[string]bool)
	for _, app := range acesAppsFor(scale) {
		acesSet[app.Name] = true
	}
	for _, app := range AppsFor(scale) {
		for _, scheme := range BenchSchemes {
			if scheme == "aces" && !acesSet[app.Name] {
				continue
			}
			w, ok := have[app.Name+"/"+scheme]
			if !ok {
				return nil, fmt.Errorf("bench report: missing workload %s/%s", app.Name, scheme)
			}
			if w.Instrs == 0 || w.Cycles == 0 || w.SimMIPS <= 0 {
				return nil, fmt.Errorf("bench report: degenerate workload %s/%s: %+v", app.Name, scheme, w)
			}
		}
	}

	haveExp := make(map[string]bool, len(rep.Experiments))
	for _, e := range rep.Experiments {
		haveExp[e.Name] = true
	}
	for _, name := range benchExperimentNames {
		if !haveExp[name] {
			return nil, fmt.Errorf("bench report: missing experiment timing %q", name)
		}
	}
	return &rep, nil
}
