package exper

import (
	"encoding/json"
	"fmt"
	"time"

	"opec/internal/aces"
	"opec/internal/apps"
	"opec/internal/core"
	"opec/internal/inject"
	"opec/internal/mach"
	"opec/internal/monitor"
	"opec/internal/run"
)

// This file produces the machine-readable simulator-throughput baseline
// (BENCH_mach.json). The report has two halves: per-workload simulated
// instruction throughput (one fresh, timed run per app × scheme, so no
// memoized result hides the simulator cost), and wall-clock timings for
// each experiment of a shared-harness sweep. Later PRs regenerate the
// file and compare against the committed baseline to keep the perf
// trajectory visible.

// BenchSchema identifies the report format; bump on breaking changes.
// v2 added the recovery section (restart latency per workload); v3 the
// profile section (per-workload cycle attribution + counter snapshot);
// v4 the proof section (static proof coverage + simulator throughput
// with and without proof-guided MPU-check elision); v5 the snapshot
// section (checkpoint-restore latency and fork-vs-boot campaign
// throughput); v6 the backend section (threaded-code translation vs
// interpreter A/B on the dispatch-bound sweep and every workload); v7
// the fuzz section (coverage-guided campaign throughput plus the
// guided-vs-random unique-edge inequality).
const BenchSchema = "opec-bench/mach/v7"

// BenchSchemes is the fixed execution-scheme order of the report.
var BenchSchemes = []string{"vanilla", "opec", "aces"}

// benchExperimentNames is the fixed harness-sweep order.
var benchExperimentNames = []string{"table1", "figure9", "table2", "figure10", "figure11", "table3", "profile"}

// BenchWorkload is one timed run of one app under one scheme.
type BenchWorkload struct {
	App         string  `json:"app"`
	Scheme      string  `json:"scheme"`
	Instrs      uint64  `json:"instrs"`
	Cycles      uint64  `json:"cycles"`
	WallSeconds float64 `json:"wall_seconds"`
	SimMIPS     float64 `json:"sim_mips"` // simulated instructions / wall second / 1e6
}

// BenchExperiment is the wall-clock cost of one experiment in a
// shared-harness sweep (cache-warm ordering matches opec-bench -exp all).
type BenchExperiment struct {
	Name        string  `json:"name"`
	WallSeconds float64 `json:"wall_seconds"`
}

// BenchRecovery is the restart-latency measurement of one workload:
// the first planned rogue store from a non-default operation, replayed
// under the RestartOperation policy, with the monitor's modeled restart
// cost. Workloads whose trial catalogue has no restartable rogue store
// have no entry.
type BenchRecovery struct {
	App  string `json:"app"`
	Spec string `json:"spec"` // the replayable trial measured
	// Restarts is the number of operation restarts the trial caused.
	Restarts uint64 `json:"restarts"`
	// RestartCycles is the total modeled cycles spent re-initializing
	// (backoff + data/stack/relocation restoration + MPU reload).
	RestartCycles uint64 `json:"restart_cycles"`
	// CyclesPerRestart is RestartCycles / Restarts.
	CyclesPerRestart float64 `json:"cycles_per_restart"`
}

// BenchProof is one workload's proof-engine summary: the static proof
// coverage of its OPEC build and the simulator throughput of the OPEC
// scheme with certificate consumption on (the default) versus off
// (OPEC_MACH_NOPROOF) — the elision win. Cycle counts are identical
// either way (the elided path charges the same modeled cost); only
// wall-clock throughput moves.
type BenchProof struct {
	App         string  `json:"app"`
	Static      int     `json:"static_accesses"`
	Proven      int     `json:"proven"`
	Rejected    int     `json:"rejected"`
	CoveragePct float64 `json:"coverage_pct"`
	// SimMIPSElide / SimMIPSNoProof are one timed OPEC run each.
	SimMIPSElide   float64 `json:"sim_mips_elide"`
	SimMIPSNoProof float64 `json:"sim_mips_noproof"`
}

// BenchSnapshot is the fork-engine measurement (schema v5): the same
// seeded quick-sweep campaign run on the power-on engine and on the
// boot-once/fork-many engine, with the byte-identity differential and
// the isolated checkpoint-restore latency. The campaign always runs at
// quick scale — the section measures the engine, not the workloads.
type BenchSnapshot struct {
	// Workloads/Trials size the measured campaign (rows × trial lists).
	Workloads int `json:"workloads"`
	Trials    int `json:"trials"`
	// ForkMicros is the mean wall-clock cost of one checkpoint restore
	// (Forge.Reset), timed in isolation on the first quick workload.
	ForkMicros float64 `json:"fork_micros"`
	// Boot/Fork wall times and trial throughputs for the whole campaign,
	// planning included, at the report's parallelism.
	BootWallSeconds  float64 `json:"boot_wall_seconds"`
	ForkWallSeconds  float64 `json:"fork_wall_seconds"`
	BootTrialsPerSec float64 `json:"boot_trials_per_sec"`
	ForkTrialsPerSec float64 `json:"fork_trials_per_sec"`
	// Speedup is ForkTrialsPerSec / BootTrialsPerSec; the acceptance
	// floor is 10×.
	Speedup float64 `json:"speedup"`
	// Identical reports the correctness differential: both engines
	// rendered byte-identical verdict tables and agreed on every
	// trial's verdict, error text, cycle count and recovery counters.
	Identical bool `json:"identical"`
}

// BenchFuzz is the adversarial-fuzzing section (schema v7): the
// standard-shape campaign (FuzzSeed, FuzzBudget) against the quick
// frame-queue workload, run guided and as the random ablation.
// Campaigns are deterministic, so the recorded unique-edge counts are
// facts of the (seed, budget) pair; only WallSeconds and InputsPerSec
// vary between regenerations.
type BenchFuzz struct {
	App    string `json:"app"`
	Seed   int64  `json:"seed"`
	Inputs int    `json:"inputs"` // per campaign (guided and random alike)
	// WallSeconds / InputsPerSec time the guided campaign, boot and
	// calibration included, at the report's parallelism.
	WallSeconds  float64 `json:"wall_seconds"`
	InputsPerSec float64 `json:"inputs_per_sec"`
	// UniqueEdgesGuided must exceed UniqueEdgesRandom — the
	// coverage-feedback acceptance inequality; EdgeRatio is their
	// quotient.
	UniqueEdgesGuided int     `json:"unique_edges_guided"`
	UniqueEdgesRandom int     `json:"unique_edges_random"`
	EdgeRatio         float64 `json:"edge_ratio"`
	// CorpusFrames/CorpusGates size the guided corpus after the run.
	CorpusFrames int `json:"corpus_frames"`
	CorpusGates  int `json:"corpus_gates"`
	// Findings counts the guided campaign's non-clean trials; Escapes
	// totals isolation escapes across both campaigns and must be zero.
	Findings int `json:"findings"`
	Escapes  int `json:"escapes"`
}

// BenchReport is the top-level BENCH_mach.json document.
type BenchReport struct {
	Schema      string            `json:"schema"`
	Scale       string            `json:"scale"`
	Parallel    int               `json:"parallel"`
	Workloads   []BenchWorkload   `json:"workloads"`
	Experiments []BenchExperiment `json:"experiments"`
	Recovery    []BenchRecovery   `json:"recovery"`
	// Profile is the per-workload attribution summary (the same rows
	// `opec-bench -exp profile` renders), with each run's unified
	// counter snapshot.
	Profile []ProfileRow `json:"profile"`
	// Proof is the per-workload proof-coverage and elision-throughput
	// section (schema v4).
	Proof []BenchProof `json:"proof"`
	// Snapshot is the fork-engine latency/throughput/differential
	// section (schema v5).
	Snapshot *BenchSnapshot `json:"snapshot"`
	// Backend is the execution-backend A/B section (schema v6).
	Backend *BenchBackend `json:"backend"`
	// Fuzz is the adversarial-fuzzing section (schema v7).
	Fuzz *BenchFuzz `json:"fuzz"`
}

// CollectBench measures simulator throughput at scale s. Workload runs
// execute serially (each is individually timed); the experiment sweep
// uses a harness with the given parallelism, mirroring a normal
// opec-bench invocation.
func CollectBench(s AppSet, parallel int) (*BenchReport, error) {
	rep := &BenchReport{Schema: BenchSchema, Scale: scaleName(s), Parallel: parallel}

	acesSet := make(map[string]bool)
	for _, app := range acesAppsFor(s) {
		acesSet[app.Name] = true
	}
	for _, app := range AppsFor(s) {
		for _, scheme := range BenchSchemes {
			if scheme == "aces" && !acesSet[app.Name] {
				continue // ACES runs only the five comparison workloads
			}
			w, err := benchOne(app.Name, scheme, func() (*run.Result, error) {
				inst := app.New()
				switch scheme {
				case "vanilla":
					return run.Vanilla(inst)
				case "opec":
					return run.OPEC(inst)
				default:
					return run.ACES(inst, aces.Filename)
				}
			})
			if err != nil {
				return nil, fmt.Errorf("bench %s/%s: %w", app.Name, scheme, err)
			}
			rep.Workloads = append(rep.Workloads, w)
		}
	}

	h := NewHarness(parallel)
	for _, name := range benchExperimentNames {
		start := time.Now()
		var err error
		switch name {
		case "table1":
			_, err = h.Table1(s)
		case "figure9":
			_, err = h.Figure9(s)
		case "table2":
			_, err = h.Table2(s)
		case "figure10":
			_, err = h.Figure10(s)
		case "figure11":
			_, err = h.Figure11(s)
		case "table3":
			_, err = h.Table3(s)
		case "profile":
			rep.Profile, err = h.Profile(s)
		}
		if err != nil {
			return nil, fmt.Errorf("bench experiment %s: %w", name, err)
		}
		rep.Experiments = append(rep.Experiments, BenchExperiment{
			Name:        name,
			WallSeconds: time.Since(start).Seconds(),
		})
	}

	for _, app := range AppsFor(s) {
		rec, ok, err := measureRecovery(app)
		if err != nil {
			return nil, fmt.Errorf("bench recovery %s: %w", app.Name, err)
		}
		if ok {
			rep.Recovery = append(rep.Recovery, rec)
		}
	}

	for _, app := range AppsFor(s) {
		pr, err := measureProof(app)
		if err != nil {
			return nil, fmt.Errorf("bench proof %s: %w", app.Name, err)
		}
		rep.Proof = append(rep.Proof, pr)
	}

	snap, err := measureSnapshot(parallel)
	if err != nil {
		return nil, fmt.Errorf("bench snapshot: %w", err)
	}
	rep.Snapshot = &snap

	rep.Backend, err = measureBackend(s)
	if err != nil {
		return nil, fmt.Errorf("bench backend: %w", err)
	}

	fz, err := measureFuzz(parallel)
	if err != nil {
		return nil, fmt.Errorf("bench fuzz: %w", err)
	}
	rep.Fuzz = &fz
	return rep, nil
}

// measureFuzz runs the standard-shape fuzzing campaign twice — guided,
// then the random ablation — on the quick frame-queue workload, timing
// the guided leg for throughput. Like the snapshot section, it always
// runs at quick scale: the section measures the engine. The strict
// guided>random inequality is validated by ValidateBenchReport, so a
// baseline can only regenerate while coverage feedback still earns its
// keep.
func measureFuzz(parallel int) (BenchFuzz, error) {
	h := NewHarness(parallel)
	pol := monitor.Policy{}
	start := time.Now()
	guided, err := h.Fuzz(Quick, FuzzSeed, FuzzBudget, false, pol, "")
	if err != nil {
		return BenchFuzz{}, err
	}
	wall := time.Since(start).Seconds()
	random, err := h.Fuzz(Quick, FuzzSeed, FuzzBudget, true, pol, "")
	if err != nil {
		return BenchFuzz{}, err
	}
	f := BenchFuzz{
		App: guided.App, Seed: guided.Seed, Inputs: guided.Inputs,
		WallSeconds:       wall,
		UniqueEdgesGuided: guided.UniqueEdges,
		UniqueEdgesRandom: random.UniqueEdges,
		CorpusFrames:      guided.CorpusFrames,
		CorpusGates:       guided.CorpusGates,
		Findings:          guided.TotalFindings,
		Escapes:           guided.Escapes() + random.Escapes(),
	}
	if wall > 0 {
		f.InputsPerSec = float64(guided.Inputs) / wall
	}
	if random.UniqueEdges > 0 {
		f.EdgeRatio = float64(guided.UniqueEdges) / float64(random.UniqueEdges)
	}
	return f, nil
}

// snapshotSweepConfig shapes the snapshot section's quick sweep: a
// dense malformed-gate fuzz of every workload's supervisor-call
// surface. Gate trials fire at the first entry of main and die inside
// the gate check, so per-trial cost is dominated by what the engines
// differ on — power-on reconstruction versus checkpoint restore — and
// the recorded speedup measures the engine, not the simulator. (On the
// mixed default campaign the simulated post-injection run dominates
// both engines equally; see DESIGN.md §11.) This is also the
// fuzzing-shaped workload the fork engine exists for: high volumes of
// short adversarial trials against the gate/parser surface. (The
// planner has no all-gate shape — a zero victim cap means "all", so
// gateOnly prunes the planned rows down to their gate trials.)
var snapshotSweepConfig = inject.Config{
	Seed: benchRecoverySeed, VictimsPerOp: 1, PeriphsPerOp: 1, GateTrials: 160,
}

// gateOnly restricts every planned row to its forged-SVC gate trials
// (the garbage-argument variant is dropped too: a sanitizer that lets
// garbage through runs a full session, which measures the simulator
// rather than the engine).
func gateOnly(plans []*rowPlan) {
	for _, p := range plans {
		var specs []inject.Spec
		for _, sp := range p.specs {
			if sp.Kind == inject.BadGate && len(sp.Args) == 0 {
				specs = append(specs, sp)
			}
		}
		p.specs = specs
		p.row.Trials = len(specs)
	}
}

// measureSnapshot runs the gate-fuzz quick sweep on both trial engines
// and compares them: wall-clock throughput for the headline speedup
// and the full per-trial differential for the Identical flag. Planning
// (which memoizes each workload's compile and clean-run budget in the
// shared cache) happens once, untimed — the walls cover exactly the
// trial execution the engines disagree on.
func measureSnapshot(parallel int) (BenchSnapshot, error) {
	pol := monitor.Policy{}
	h := NewHarness(parallel)

	bootPlans, err := h.planInject(Quick, snapshotSweepConfig, pol)
	if err != nil {
		return BenchSnapshot{}, err
	}
	gateOnly(bootPlans)
	start := time.Now()
	if err := h.runInjectBoot(bootPlans, pol); err != nil {
		return BenchSnapshot{}, err
	}
	bootWall := time.Since(start).Seconds()
	boot := aggregateInject(bootPlans)

	forkPlans, err := h.planInject(Quick, snapshotSweepConfig, pol)
	if err != nil {
		return BenchSnapshot{}, err
	}
	gateOnly(forkPlans)
	start = time.Now()
	if err := h.runInjectFork(forkPlans, pol); err != nil {
		return BenchSnapshot{}, err
	}
	forkWall := time.Since(start).Seconds()
	fork := aggregateInject(forkPlans)

	sn := BenchSnapshot{
		Workloads:       len(fork),
		BootWallSeconds: bootWall,
		ForkWallSeconds: forkWall,
		Identical:       InjectRunsIdentical(boot, fork),
	}
	for _, r := range fork {
		sn.Trials += r.Trials
	}
	if bootWall > 0 {
		sn.BootTrialsPerSec = float64(sn.Trials) / bootWall
	}
	if forkWall > 0 {
		sn.ForkTrialsPerSec = float64(sn.Trials) / forkWall
	}
	if sn.BootTrialsPerSec > 0 {
		sn.Speedup = sn.ForkTrialsPerSec / sn.BootTrialsPerSec
	}

	// Isolated checkpoint-restore latency on the first quick workload.
	forge, err := inject.NewForge(AppsFor(Quick)[0])
	if err != nil {
		return BenchSnapshot{}, err
	}
	const resets = 100
	start = time.Now()
	for i := 0; i < resets; i++ {
		if err := forge.Reset(); err != nil {
			return BenchSnapshot{}, err
		}
	}
	sn.ForkMicros = time.Since(start).Seconds() / resets * 1e6
	return sn, nil
}

// InjectRunsIdentical is the fork-vs-boot differential: byte-identical
// rendered tables and per-trial agreement on verdict, error text,
// cycles and recovery counters. The bench snapshot section and
// opec-bench's -inject-engine diff mode both gate on it.
func InjectRunsIdentical(boot, fork []InjectRow) bool {
	if RenderInject(boot) != RenderInject(fork) || len(boot) != len(fork) {
		return false
	}
	for i := range fork {
		fr, br := fork[i], boot[i]
		if len(fr.Outcomes) != len(br.Outcomes) {
			return false
		}
		for k := range fr.Outcomes {
			fo, bo := fr.Outcomes[k], br.Outcomes[k]
			if fo.Verdict != bo.Verdict || fo.Err != bo.Err || fo.Cycles != bo.Cycles ||
				fo.Restarts != bo.Restarts || fo.Quarantines != bo.Quarantines ||
				fo.RestartCycles != bo.RestartCycles {
				return false
			}
		}
	}
	return true
}

// measureProof collects one workload's proof-coverage summary and the
// elision throughput pair: two serial timed OPEC runs, one consuming
// certificates (the default) and one with proof consumption disabled.
// The runs execute serially and restore the global kill switch, so the
// measurement composes with any surrounding sweep.
func measureProof(app *apps.App) (BenchProof, error) {
	inst := app.New()
	b, err := core.Compile(inst.Mod, inst.Board, inst.Cfg)
	if err != nil {
		return BenchProof{}, err
	}
	pr := BenchProof{App: app.Name}
	if p := b.Proofs; p != nil {
		pr.Static, pr.Proven, pr.Rejected = p.Static(), p.Proven(), p.Rejected()
		if pr.Static > 0 {
			pr.CoveragePct = 100 * float64(pr.Proven) / float64(pr.Static)
		}
	}

	saved := mach.DisableProofs
	defer func() { mach.DisableProofs = saved }()

	mach.DisableProofs = false
	we, err := benchOne(app.Name, "opec", func() (*run.Result, error) { return run.OPEC(app.New()) })
	if err != nil {
		return BenchProof{}, err
	}
	pr.SimMIPSElide = we.SimMIPS

	mach.DisableProofs = true
	wn, err := benchOne(app.Name, "opec", func() (*run.Result, error) { return run.OPEC(app.New()) })
	if err != nil {
		return BenchProof{}, err
	}
	pr.SimMIPSNoProof = wn.SimMIPS
	return pr, nil
}

// benchRecoverySeed fixes the trial catalogue the recovery measurements
// draw from, so the measured spec is stable across regenerations.
const benchRecoverySeed = 1

// measureRecovery times one operation restart on app: the first planned
// rogue store from a non-default operation is contained by the MPU,
// RestartOperation re-initializes the operation, and the monitor's
// restart cycle counter is the latency. ok is false when the workload
// plans no such trial or the trial never reached its trigger.
func measureRecovery(app *apps.App) (BenchRecovery, bool, error) {
	inst := app.New()
	b, err := core.Compile(inst.Mod, inst.Board, inst.Cfg)
	if err != nil {
		return BenchRecovery{}, false, err
	}
	var spec inject.Spec
	found := false
	for _, sp := range inject.Plan(b, inst.Devices, inject.DefaultConfig(benchRecoverySeed)) {
		if sp.Kind == inject.RogueStore && sp.Func != "main" {
			spec, found = sp, true
			break
		}
	}
	if !found {
		return BenchRecovery{}, false, nil
	}
	out, err := inject.RunOPEC(app, spec, monitor.Policy{Kind: monitor.RestartOperation}, 0)
	if err != nil {
		return BenchRecovery{}, false, err
	}
	if out.Restarts == 0 || out.RestartCycles == 0 {
		return BenchRecovery{}, false, nil
	}
	return BenchRecovery{
		App:              app.Name,
		Spec:             spec.String(),
		Restarts:         out.Restarts,
		RestartCycles:    out.RestartCycles,
		CyclesPerRestart: float64(out.RestartCycles) / float64(out.Restarts),
	}, true, nil
}

// benchOne times a single fresh run and derives throughput.
func benchOne(app, scheme string, do func() (*run.Result, error)) (BenchWorkload, error) {
	start := time.Now()
	res, err := do()
	wall := time.Since(start).Seconds()
	if err != nil {
		return BenchWorkload{}, err
	}
	w := BenchWorkload{
		App:         app,
		Scheme:      scheme,
		Instrs:      res.Machine.InstrCount,
		Cycles:      res.Cycles,
		WallSeconds: wall,
	}
	if wall > 0 {
		w.SimMIPS = float64(w.Instrs) / wall / 1e6
	}
	return w, nil
}

func scaleName(s AppSet) string {
	if s == Full {
		return "full"
	}
	return "quick"
}

// MarshalBenchReport renders the report as stable, indented JSON.
func MarshalBenchReport(rep *BenchReport) ([]byte, error) {
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ValidateBenchReport parses data and checks it is a complete report:
// correct schema, every workload of its recorded scale present under
// every applicable scheme with positive throughput, and every
// experiment timed. opec-bench -validate and CI call this.
func ValidateBenchReport(data []byte) (*BenchReport, error) {
	var rep BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("bench report: %w", err)
	}
	if rep.Schema != BenchSchema {
		return nil, fmt.Errorf("bench report: schema %q, want %q", rep.Schema, BenchSchema)
	}
	var scale AppSet
	switch rep.Scale {
	case "full":
		scale = Full
	case "quick":
		scale = Quick
	default:
		return nil, fmt.Errorf("bench report: unknown scale %q", rep.Scale)
	}

	have := make(map[string]BenchWorkload, len(rep.Workloads))
	for _, w := range rep.Workloads {
		have[w.App+"/"+w.Scheme] = w
	}
	acesSet := make(map[string]bool)
	for _, app := range acesAppsFor(scale) {
		acesSet[app.Name] = true
	}
	for _, app := range AppsFor(scale) {
		for _, scheme := range BenchSchemes {
			if scheme == "aces" && !acesSet[app.Name] {
				continue
			}
			w, ok := have[app.Name+"/"+scheme]
			if !ok {
				return nil, fmt.Errorf("bench report: missing workload %s/%s", app.Name, scheme)
			}
			if w.Instrs == 0 || w.Cycles == 0 || w.SimMIPS <= 0 {
				return nil, fmt.Errorf("bench report: degenerate workload %s/%s: %+v", app.Name, scheme, w)
			}
		}
	}

	haveExp := make(map[string]bool, len(rep.Experiments))
	for _, e := range rep.Experiments {
		haveExp[e.Name] = true
	}
	for _, name := range benchExperimentNames {
		if !haveExp[name] {
			return nil, fmt.Errorf("bench report: missing experiment timing %q", name)
		}
	}

	// Profile section: one attribution row per workload of the scale,
	// with live event streams, a unified counter snapshot, and a switch
	// cost per activation matching the monitor's modeled gate round-trip
	// within 5% (the attribution-consistency acceptance check).
	haveProf := make(map[string]ProfileRow, len(rep.Profile))
	for _, p := range rep.Profile {
		haveProf[p.App] = p
	}
	for _, app := range AppsFor(scale) {
		p, ok := haveProf[app.Name]
		if !ok {
			return nil, fmt.Errorf("bench report: missing profile row for %s", app.Name)
		}
		if p.Cycles == 0 || p.Events == 0 || len(p.Counters) == 0 {
			return nil, fmt.Errorf("bench report: degenerate profile row %s: %+v", app.Name, p)
		}
		if p.Activations > 0 {
			model := float64(monitor.ModeledSwitchCycles)
			if p.SwitchPerActivation < 0.95*model || p.SwitchPerActivation > 1.05*model {
				return nil, fmt.Errorf("bench report: profile %s: switch cycles/activation %.1f outside 5%% of modeled %d",
					app.Name, p.SwitchPerActivation, monitor.ModeledSwitchCycles)
			}
		}
	}

	// Proof section (v4): one row per workload with a sane coverage
	// figure and positive throughput on both sides of the kill switch.
	// The proof engine's acceptance floor — coverage of at least half
	// the static accesses on at least five workloads — is enforced here
	// so a precision regression cannot regenerate a valid baseline.
	haveProof := make(map[string]BenchProof, len(rep.Proof))
	for _, p := range rep.Proof {
		haveProof[p.App] = p
	}
	covered := 0
	for _, app := range AppsFor(scale) {
		p, ok := haveProof[app.Name]
		if !ok {
			return nil, fmt.Errorf("bench report: missing proof row for %s", app.Name)
		}
		if p.Static <= 0 || p.Proven <= 0 || p.CoveragePct <= 0 || p.CoveragePct > 100 {
			return nil, fmt.Errorf("bench report: degenerate proof row %s: %+v", app.Name, p)
		}
		if p.Rejected != 0 {
			return nil, fmt.Errorf("bench report: proof row %s has %d rejected accesses — the build should not have compiled", app.Name, p.Rejected)
		}
		if p.SimMIPSElide <= 0 || p.SimMIPSNoProof <= 0 {
			return nil, fmt.Errorf("bench report: proof row %s lacks throughput: %+v", app.Name, p)
		}
		if p.CoveragePct >= 50 {
			covered++
		}
	}
	if n := len(AppsFor(scale)); n >= 5 && covered < 5 {
		return nil, fmt.Errorf("bench report: proof coverage >= 50%% on %d of %d workloads, want >= 5", covered, n)
	}

	// Snapshot section (v5): the fork engine must have run the quick
	// campaign, matched the power-on engine byte for byte, and cleared
	// the 10× throughput floor.
	if rep.Snapshot == nil {
		return nil, fmt.Errorf("bench report: missing snapshot section")
	}
	sn := rep.Snapshot
	if sn.Workloads <= 0 || sn.Trials <= 0 || sn.ForkMicros <= 0 ||
		sn.BootWallSeconds <= 0 || sn.ForkWallSeconds <= 0 ||
		sn.BootTrialsPerSec <= 0 || sn.ForkTrialsPerSec <= 0 {
		return nil, fmt.Errorf("bench report: degenerate snapshot section: %+v", sn)
	}
	if !sn.Identical {
		return nil, fmt.Errorf("bench report: fork engine diverged from the power-on engine")
	}
	if sn.Speedup < 10 {
		return nil, fmt.Errorf("bench report: fork-engine speedup %.1fx below the 10x floor", sn.Speedup)
	}

	// Backend section (v6): the dispatch-bound sweep must clear the
	// translation-engine speedup floor, and every per-app A/B must have
	// finished both backends at identical cycle and instruction counts
	// (the exactness invariant) with sane throughput on both sides.
	if rep.Backend == nil {
		return nil, fmt.Errorf("bench report: missing backend section")
	}
	bb := rep.Backend
	if bb.DispatchInstrs == 0 || bb.DispatchInterpSimMIPS <= 0 || bb.DispatchXlatSimMIPS <= 0 {
		return nil, fmt.Errorf("bench report: degenerate backend dispatch sweep: %+v", bb)
	}
	if bb.DispatchSpeedup < BackendSpeedupFloor {
		return nil, fmt.Errorf("bench report: translation-engine dispatch speedup %.2fx below the %.1fx floor",
			bb.DispatchSpeedup, float64(BackendSpeedupFloor))
	}
	haveBack := make(map[string]BenchBackendApp, len(bb.Apps))
	for _, a := range bb.Apps {
		haveBack[a.App] = a
	}
	for _, app := range AppsFor(scale) {
		a, ok := haveBack[app.Name]
		if !ok {
			return nil, fmt.Errorf("bench report: missing backend row for %s", app.Name)
		}
		if a.InterpSimMIPS <= 0 || a.XlatSimMIPS <= 0 {
			return nil, fmt.Errorf("bench report: degenerate backend row %s: %+v", app.Name, a)
		}
		if !a.CyclesEqual {
			return nil, fmt.Errorf("bench report: backend row %s: translation engine diverged from the interpreter", app.Name)
		}
	}

	// Fuzz section (v7): the guided campaign must have run the standard
	// shape with sane throughput, beaten the random ablation on unique
	// edges (strictly — the coverage-feedback acceptance inequality),
	// and contained every input.
	if rep.Fuzz == nil {
		return nil, fmt.Errorf("bench report: missing fuzz section")
	}
	fz := rep.Fuzz
	if fz.App == "" || fz.Inputs <= 0 || fz.WallSeconds <= 0 || fz.InputsPerSec <= 0 ||
		fz.UniqueEdgesGuided <= 0 || fz.UniqueEdgesRandom <= 0 || fz.Findings <= 0 {
		return nil, fmt.Errorf("bench report: degenerate fuzz section: %+v", fz)
	}
	if fz.UniqueEdgesGuided <= fz.UniqueEdgesRandom {
		return nil, fmt.Errorf("bench report: guided fuzzing found %d unique edges, random ablation %d — coverage feedback bought nothing",
			fz.UniqueEdgesGuided, fz.UniqueEdgesRandom)
	}
	if fz.Escapes != 0 {
		return nil, fmt.Errorf("bench report: fuzz campaigns recorded %d isolation escapes", fz.Escapes)
	}

	// Recovery section: at least two workloads must demonstrate a
	// measured restart (the recovery policies' acceptance floor), every
	// entry must name a workload of the scale, replay as a valid spec,
	// and carry a positive latency.
	if len(rep.Recovery) < 2 {
		return nil, fmt.Errorf("bench report: recovery section has %d workloads, want >= 2", len(rep.Recovery))
	}
	knownApp := make(map[string]bool)
	for _, app := range AppsFor(scale) {
		knownApp[app.Name] = true
	}
	for _, r := range rep.Recovery {
		if !knownApp[r.App] {
			return nil, fmt.Errorf("bench report: recovery entry for unknown workload %q", r.App)
		}
		if _, err := inject.ParseSpec(r.Spec); err != nil {
			return nil, fmt.Errorf("bench report: recovery %s: %w", r.App, err)
		}
		if r.Restarts == 0 || r.RestartCycles == 0 || r.CyclesPerRestart <= 0 {
			return nil, fmt.Errorf("bench report: degenerate recovery entry %s: %+v", r.App, r)
		}
	}
	return &rep, nil
}
