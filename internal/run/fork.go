package run

import (
	"opec/internal/aces"
	"opec/internal/apps"
	"opec/internal/core"
	"opec/internal/mach"
	"opec/internal/monitor"
)

// This file implements boot-once/fork-many execution: an OPECContext
// (or ACESContext) boots an instance exactly the way OPECWith does,
// checkpoints machine and runtime state at the point OPECWith would
// arm an injection, and then serves any number of Fork runs, each of
// which restores the checkpoint instead of re-compiling and re-booting
// from power-on. The correctness contract is byte-identity: a Fork
// with given Options returns the same Result fields, the same error
// text and the same absolute cycle count as a fresh OPECWith call with
// those Options, because the clock, stats and monitor bookkeeping all
// rewind to their boot values.

// OPECContext is a booted, checkpointed OPEC instance.
type OPECContext struct {
	Inst *apps.Instance
	B    *core.Build
	Mon  *monitor.Monitor

	snap    *mach.Snapshot
	monSnap *monitor.Snapshot
}

// BootOPEC boots the compiled build once and checkpoints it at the
// pre-run point.
func BootOPEC(inst *apps.Instance, b *core.Build) (*OPECContext, error) {
	bus, err := newBus(inst)
	if err != nil {
		return nil, err
	}
	mon, err := monitor.Boot(b, bus)
	if err != nil {
		return nil, err
	}
	snap, err := mon.M.Snapshot()
	if err != nil {
		return nil, err
	}
	// The backend is attached once at boot so the translation cache
	// stays warm across every forked trial (Restore rewinds only
	// architected state; translations are content-addressed by
	// function, privilege and certificate row, never stale).
	if err := attachBackend(mon.M, ""); err != nil {
		return nil, err
	}
	return &OPECContext{Inst: inst, B: b, Mon: mon, snap: snap, monSnap: mon.Snapshot()}, nil
}

// SnapshotID identifies the checkpoint's machine state; together with
// an injection spec it is a complete replay coordinate.
func (c *OPECContext) SnapshotID() string { return c.snap.ID() }

// Reset rewinds machine and monitor to the checkpoint without running
// anything (the fork-latency benchmark times exactly this).
func (c *OPECContext) Reset() error {
	if err := c.Mon.M.Restore(c.snap); err != nil {
		return err
	}
	c.Mon.Restore(c.monSnap)
	return nil
}

// Fork restores the checkpoint and runs it under opts, mirroring
// OPECWith's post-boot sequence exactly.
func (c *OPECContext) Fork(opts Options) (*Result, error) {
	if err := c.Reset(); err != nil {
		return nil, err
	}
	mon := c.Mon
	mon.Policy = opts.Policy
	mon.M.MaxCycles = c.Inst.MaxCycles
	if opts.MaxCycles > 0 {
		mon.M.MaxCycles = opts.MaxCycles
	}
	if err := attachBackend(mon.M, opts.Backend); err != nil {
		return nil, err
	}
	if opts.Trace != nil {
		mon.AttachTrace(opts.Trace)
	}
	if opts.Arm != nil {
		opts.Arm(mon.M)
	}
	res := &Result{Machine: mon.M, Read: reader(mon.M, c.Inst), Mon: mon, Build: c.B}
	err := mon.Run()
	res.Cycles = mon.M.Clock.Now()
	return res, finish(mon.M, err, "operation "+mon.Current().Name)
}

// ACESContext is OPECContext's baseline counterpart.
type ACESContext struct {
	Inst *apps.Instance
	B    *aces.Build
	RT   *aces.Runtime

	snap   *mach.Snapshot
	rtSnap *aces.Snapshot
}

// BootACES boots the ACES build once and checkpoints it.
func BootACES(inst *apps.Instance, b *aces.Build) (*ACESContext, error) {
	bus, err := newBus(inst)
	if err != nil {
		return nil, err
	}
	rt, err := aces.Boot(b, bus)
	if err != nil {
		return nil, err
	}
	snap, err := rt.M.Snapshot()
	if err != nil {
		return nil, err
	}
	if err := attachBackend(rt.M, ""); err != nil {
		return nil, err
	}
	return &ACESContext{Inst: inst, B: b, RT: rt, snap: snap, rtSnap: rt.Snapshot()}, nil
}

// SnapshotID identifies the checkpoint's machine state.
func (c *ACESContext) SnapshotID() string { return c.snap.ID() }

// Reset rewinds machine and runtime to the checkpoint.
func (c *ACESContext) Reset() error {
	if err := c.RT.M.Restore(c.snap); err != nil {
		return err
	}
	c.RT.Restore(c.rtSnap)
	return nil
}

// Fork restores the checkpoint and runs it under opts, mirroring
// ACESWith's post-boot sequence exactly.
func (c *ACESContext) Fork(opts Options) (*Result, error) {
	if err := c.Reset(); err != nil {
		return nil, err
	}
	rt := c.RT
	rt.M.MaxCycles = c.Inst.MaxCycles
	if opts.MaxCycles > 0 {
		rt.M.MaxCycles = opts.MaxCycles
	}
	if err := attachBackend(rt.M, opts.Backend); err != nil {
		return nil, err
	}
	if opts.Trace != nil {
		rt.AttachTrace(opts.Trace)
	}
	if opts.Arm != nil {
		opts.Arm(rt.M)
	}
	res := &Result{Machine: rt.M, Read: reader(rt.M, c.Inst), ACES: rt, ABld: c.B}
	err := rt.Run()
	res.Cycles = rt.M.Clock.Now()
	return res, finish(rt.M, err, "compartment "+rt.Current().Name)
}
