package run_test

import (
	"testing"

	"opec/internal/aces"
	"opec/internal/apps"
	"opec/internal/core"
	"opec/internal/run"
)

func TestRunIsDeterministic(t *testing.T) {
	// Two independent OPEC runs of the same workload must agree on
	// cycles, switches and final state — the simulator has no hidden
	// nondeterminism.
	r1, err := run.OPEC(apps.PinLockN(3).New())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := run.OPEC(apps.PinLockN(3).New())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Errorf("cycles differ: %d vs %d", r1.Cycles, r2.Cycles)
	}
	if r1.Mon.Stats != r2.Mon.Stats {
		t.Errorf("monitor stats differ: %+v vs %+v", r1.Mon.Stats, r2.Mon.Stats)
	}
	if r1.Read("unlock_count", 0, 4) != r2.Read("unlock_count", 0, 4) {
		t.Error("final state differs")
	}
}

// The three builds must agree on every observable global of PinLock
// after the run — isolation must not change functional state.
func TestCrossBuildStateEquivalence(t *testing.T) {
	names := []string{"unlock_count", "lock_count", "lock_state", "KEY", "rx_byte_count"}

	rv, err := run.Vanilla(apps.PinLockN(3).New())
	if err != nil {
		t.Fatal(err)
	}
	ro, err := run.OPEC(apps.PinLockN(3).New())
	if err != nil {
		t.Fatal(err)
	}
	ra, err := run.ACES(apps.PinLockN(3).New(), aces.FilenameNoOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		v, o, a := rv.Read(n, 0, 4), ro.Read(n, 0, 4), ra.Read(n, 0, 4)
		if v != o || v != a {
			t.Errorf("%s diverges: vanilla=%d opec=%d aces=%d", n, v, o, a)
		}
	}
}

func TestReaderPanicsOnUnknownGlobal(t *testing.T) {
	res, err := run.Vanilla(apps.CoreMarkN(1).New())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown global did not panic")
		}
	}()
	res.Read("no_such_global", 0, 4)
}

func TestPrecompiledMatchesStandardRun(t *testing.T) {
	// OPECPrecompiled on an untouched build must behave exactly like
	// the standard OPEC runner.
	inst1 := apps.CoreMarkN(2).New()
	r1, err := run.OPEC(inst1)
	if err != nil {
		t.Fatal(err)
	}
	inst2 := apps.CoreMarkN(2).New()
	b2, err := compileFor(inst2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := run.OPECPrecompiled(inst2, b2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Errorf("cycles: %d vs %d", r1.Cycles, r2.Cycles)
	}
	if r1.Read("benchmark_result", 0, 4) != r2.Read("benchmark_result", 0, 4) {
		t.Error("results differ")
	}
}

// compileFor mirrors what run.OPEC does internally, for the
// precompiled-path comparison.
func compileFor(inst *apps.Instance) (*core.Build, error) {
	return core.Compile(inst.Mod, inst.Board, inst.Cfg)
}
