package run_test

import (
	"errors"
	"strings"
	"testing"

	"opec/internal/aces"
	"opec/internal/apps"
	"opec/internal/core"
	"opec/internal/ir"
	"opec/internal/mach"
	"opec/internal/run"
)

func TestRunIsDeterministic(t *testing.T) {
	// Two independent OPEC runs of the same workload must agree on
	// cycles, switches and final state — the simulator has no hidden
	// nondeterminism.
	r1, err := run.OPEC(apps.PinLockN(3).New())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := run.OPEC(apps.PinLockN(3).New())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Errorf("cycles differ: %d vs %d", r1.Cycles, r2.Cycles)
	}
	if r1.Mon.Stats != r2.Mon.Stats {
		t.Errorf("monitor stats differ: %+v vs %+v", r1.Mon.Stats, r2.Mon.Stats)
	}
	if r1.Read("unlock_count", 0, 4) != r2.Read("unlock_count", 0, 4) {
		t.Error("final state differs")
	}
}

// The three builds must agree on every observable global of PinLock
// after the run — isolation must not change functional state.
func TestCrossBuildStateEquivalence(t *testing.T) {
	names := []string{"unlock_count", "lock_count", "lock_state", "KEY", "rx_byte_count"}

	rv, err := run.Vanilla(apps.PinLockN(3).New())
	if err != nil {
		t.Fatal(err)
	}
	ro, err := run.OPEC(apps.PinLockN(3).New())
	if err != nil {
		t.Fatal(err)
	}
	ra, err := run.ACES(apps.PinLockN(3).New(), aces.FilenameNoOpt)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		v, o, a := rv.Read(n, 0, 4), ro.Read(n, 0, 4), ra.Read(n, 0, 4)
		if v != o || v != a {
			t.Errorf("%s diverges: vanilla=%d opec=%d aces=%d", n, v, o, a)
		}
	}
}

func TestReaderPanicsOnUnknownGlobal(t *testing.T) {
	res, err := run.Vanilla(apps.CoreMarkN(1).New())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown global did not panic")
		}
	}()
	res.Read("no_such_global", 0, 4)
}

func TestPrecompiledMatchesStandardRun(t *testing.T) {
	// OPECPrecompiled on an untouched build must behave exactly like
	// the standard OPEC runner.
	inst1 := apps.CoreMarkN(2).New()
	r1, err := run.OPEC(inst1)
	if err != nil {
		t.Fatal(err)
	}
	inst2 := apps.CoreMarkN(2).New()
	b2, err := compileFor(inst2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := run.OPECPrecompiled(inst2, b2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Errorf("cycles: %d vs %d", r1.Cycles, r2.Cycles)
	}
	if r1.Read("benchmark_result", 0, 4) != r2.Read("benchmark_result", 0, 4) {
		t.Error("results differ")
	}
}

// compileFor mirrors what run.OPEC does internally, for the
// precompiled-path comparison.
func compileFor(inst *apps.Instance) (*core.Build, error) {
	return core.Compile(inst.Mod, inst.Board, inst.Cfg)
}

// A contained fault must come back located: the faulting operation from
// the run wrapper, the faulting function and PC from the interpreter.
func TestFaultErrorNamesOperationAndPC(t *testing.T) {
	inst := apps.PinLockN(1).New()
	b, err := compileFor(inst)
	if err != nil {
		t.Fatal(err)
	}
	// The §6.1 compromise: an arbitrary write to KEY prepended to
	// Lock_Task after compilation.
	lt := inst.Mod.MustFunc("Lock_Task")
	key := inst.Mod.Global("KEY")
	in := &ir.Instr{Op: ir.OpStore, Typ: ir.I8, Args: []ir.Value{key, ir.CI(0xEE)}}
	lt.Entry().Instrs = append([]*ir.Instr{in}, lt.Entry().Instrs...)

	_, err = run.OPECPrecompiled(inst, b)
	if err == nil {
		t.Fatal("attack unexpectedly survived")
	}
	if !strings.Contains(err.Error(), "operation Lock_Task") {
		t.Errorf("error %q does not name the faulting operation", err)
	}
	var ee *mach.ExecError
	if !errors.As(err, &ee) || ee.Fn != "Lock_Task" {
		t.Errorf("error %q does not locate the faulting function", err)
	}
	if !strings.Contains(err.Error(), "pc 0x") {
		t.Errorf("error %q does not mention the faulting PC", err)
	}
	var f *mach.Fault
	if !errors.As(err, &f) || f.Kind != mach.FaultMemManage {
		t.Errorf("underlying fault lost: %v", err)
	}
}

// OPECWith must hand back the partial result on a contained fault so
// callers can read monitor stats post-mortem, and the restart policy
// must flow through Options.
func TestOPECWithReturnsPartialResultAndPolicy(t *testing.T) {
	inst := apps.PinLockN(1).New()
	b, err := compileFor(inst)
	if err != nil {
		t.Fatal(err)
	}
	res, err := run.OPECWith(inst, b, run.Options{
		Arm: func(m *mach.Machine) {
			m.Arm(&mach.Injection{
				Func: inst.Mod.MustFunc("Lock_Task"),
				N:    1,
				Fire: func(mm *mach.Machine) error {
					addr := b.PublicAddr[inst.Mod.Global("KEY")]
					return mm.InjectStore(addr, 1, 0xEE)
				},
			})
		},
	})
	if err == nil {
		t.Fatal("abort policy should propagate the injected fault")
	}
	if res == nil || res.Mon == nil {
		t.Fatal("no partial result on contained fault")
	}
	if res.Mon.Stats.Switches == 0 {
		t.Error("partial result has empty stats")
	}
}
