// Package run executes workload instances under the three build
// flavours the evaluation compares: the vanilla baseline (privileged,
// MPU off), OPEC (operation isolation under the monitor) and ACES
// (compartment isolation under its runtime).
package run

import (
	"fmt"

	"opec/internal/aces"
	"opec/internal/apps"
	"opec/internal/core"
	"opec/internal/dev"
	"opec/internal/image"
	"opec/internal/mach"
	"opec/internal/monitor"
)

// Result captures one finished run.
type Result struct {
	Cycles  uint64
	Machine *mach.Machine
	Read    apps.ReadGlobal

	// Exactly one of the following is set, matching the flavour.
	Van   *image.Vanilla
	Mon   *monitor.Monitor
	Build *core.Build // OPEC compile output (set with Mon)
	ACES  *aces.Runtime
	ABld  *aces.Build
}

// newBus builds the bus for an instance and attaches its devices.
func newBus(inst *apps.Instance) (*mach.Bus, error) {
	bus := mach.NewBus(inst.Board.FlashSize, inst.Board.SRAMSize, inst.Clk)
	// Every board has the flash-interface block the clock bring-up
	// programs, plus the GPIO ports the pin-mux table touches that the
	// workloads don't model behaviourally.
	if err := bus.Attach(dev.NewFlashIF()); err != nil {
		return nil, err
	}
	if err := bus.Attach(dev.NewGPIO(mach.GPIOBBase, inst.Clk)); err != nil {
		return nil, err
	}
	if err := bus.Attach(dev.NewGPIO(mach.GPIOCBase, inst.Clk)); err != nil {
		return nil, err
	}
	for _, d := range inst.Devices {
		if err := bus.Attach(d); err != nil {
			return nil, err
		}
	}
	if inst.NeedsDMA2D {
		if err := bus.Attach(dev.NewDMA2D(inst.Clk, bus)); err != nil {
			return nil, err
		}
	}
	return bus, nil
}

func reader(m *mach.Machine, inst *apps.Instance) apps.ReadGlobal {
	return func(name string, off uint32, size int) uint32 {
		g := inst.Mod.Global(name)
		if g == nil {
			panic(fmt.Sprintf("run: no global %q", name))
		}
		addr, f := m.GlobalAddr(g, true)
		if f != nil {
			panic(f)
		}
		v, f := m.Bus.RawLoad(addr+off, size)
		if f != nil {
			panic(f)
		}
		return v
	}
}

func finish(m *mach.Machine, err error) error {
	if err != nil {
		return err
	}
	if !m.Halted {
		return fmt.Errorf("run: program returned without reaching its halt point")
	}
	return nil
}

// Vanilla runs the instance as the unprotected baseline binary.
func Vanilla(inst *apps.Instance) (*Result, error) {
	van, err := image.BuildVanilla(inst.Mod, inst.Board)
	if err != nil {
		return nil, err
	}
	bus, err := newBus(inst)
	if err != nil {
		return nil, err
	}
	m := van.Instantiate(bus)
	m.MaxCycles = inst.MaxCycles
	_, err = m.Run(inst.Mod.MustFunc("main"))
	if err := finish(m, err); err != nil {
		return nil, err
	}
	return &Result{Cycles: m.Clock.Now(), Machine: m, Read: reader(m, inst), Van: van}, nil
}

// OPEC compiles the instance with OPEC-Compiler and runs it under
// OPEC-Monitor.
func OPEC(inst *apps.Instance) (*Result, error) {
	b, err := core.Compile(inst.Mod, inst.Board, inst.Cfg)
	if err != nil {
		return nil, err
	}
	bus, err := newBus(inst)
	if err != nil {
		return nil, err
	}
	mon, err := monitor.Boot(b, bus)
	if err != nil {
		return nil, err
	}
	mon.M.MaxCycles = inst.MaxCycles
	if err := finish(mon.M, mon.Run()); err != nil {
		return nil, err
	}
	return &Result{Cycles: mon.M.Clock.Now(), Machine: mon.M, Read: reader(mon.M, inst), Mon: mon, Build: b}, nil
}

// OPECPMP is OPEC on the RISC-V PMP backend (the paper's Section 7
// portability target).
func OPECPMP(inst *apps.Instance) (*Result, error) {
	b, err := core.Compile(inst.Mod, inst.Board, inst.Cfg)
	if err != nil {
		return nil, err
	}
	bus, err := newBus(inst)
	if err != nil {
		return nil, err
	}
	mon, err := monitor.BootPMP(b, bus)
	if err != nil {
		return nil, err
	}
	mon.M.MaxCycles = inst.MaxCycles
	if err := finish(mon.M, mon.Run()); err != nil {
		return nil, err
	}
	return &Result{Cycles: mon.M.Clock.Now(), Machine: mon.M, Read: reader(mon.M, inst), Mon: mon, Build: b}, nil
}

// OPECPrecompiled runs an instance whose module was already compiled
// with core.Compile (callers that inspect or modify the compiled module
// — e.g. attack injection — before running).
func OPECPrecompiled(inst *apps.Instance, b *core.Build) (*Result, error) {
	bus, err := newBus(inst)
	if err != nil {
		return nil, err
	}
	mon, err := monitor.Boot(b, bus)
	if err != nil {
		return nil, err
	}
	mon.M.MaxCycles = inst.MaxCycles
	if err := finish(mon.M, mon.Run()); err != nil {
		return nil, err
	}
	return &Result{Cycles: mon.M.Clock.Now(), Machine: mon.M, Read: reader(mon.M, inst), Mon: mon, Build: b}, nil
}

// ACESPrecompiled is OPECPrecompiled's ACES counterpart.
func ACESPrecompiled(inst *apps.Instance, b *aces.Build) (*Result, error) {
	bus, err := newBus(inst)
	if err != nil {
		return nil, err
	}
	rt, err := aces.Boot(b, bus)
	if err != nil {
		return nil, err
	}
	rt.M.MaxCycles = inst.MaxCycles
	if err := finish(rt.M, rt.Run()); err != nil {
		return nil, err
	}
	return &Result{Cycles: rt.M.Clock.Now(), Machine: rt.M, Read: reader(rt.M, inst), ACES: rt, ABld: b}, nil
}

// ACES compiles the instance with the baseline's strategy and runs it
// under the ACES runtime.
func ACES(inst *apps.Instance, strat aces.Strategy) (*Result, error) {
	b, err := aces.Compile(inst.Mod, inst.Board, strat)
	if err != nil {
		return nil, err
	}
	bus, err := newBus(inst)
	if err != nil {
		return nil, err
	}
	rt, err := aces.Boot(b, bus)
	if err != nil {
		return nil, err
	}
	rt.M.MaxCycles = inst.MaxCycles
	if err := finish(rt.M, rt.Run()); err != nil {
		return nil, err
	}
	return &Result{Cycles: rt.M.Clock.Now(), Machine: rt.M, Read: reader(rt.M, inst), ACES: rt, ABld: b}, nil
}

// AndCheck runs the instance's correctness check against a result.
func AndCheck(inst *apps.Instance, res *Result) error {
	if inst.Check == nil {
		return nil
	}
	return inst.Check(res.Read)
}
