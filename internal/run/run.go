// Package run executes workload instances under the three build
// flavours the evaluation compares: the vanilla baseline (privileged,
// MPU off), OPEC (operation isolation under the monitor) and ACES
// (compartment isolation under its runtime).
package run

import (
	"fmt"

	"opec/internal/aces"
	"opec/internal/apps"
	"opec/internal/core"
	"opec/internal/dev"
	"opec/internal/image"
	"opec/internal/mach"
	"opec/internal/monitor"
	"opec/internal/trace"
)

// Result captures one finished run.
type Result struct {
	Cycles  uint64
	Machine *mach.Machine
	Read    apps.ReadGlobal

	// Exactly one of the following is set, matching the flavour.
	Van   *image.Vanilla
	Mon   *monitor.Monitor
	Build *core.Build // OPEC compile output (set with Mon)
	ACES  *aces.Runtime
	ABld  *aces.Build
}

// newBus builds the bus for an instance and attaches its devices.
func newBus(inst *apps.Instance) (*mach.Bus, error) {
	bus := mach.NewBus(inst.Board.FlashSize, inst.Board.SRAMSize, inst.Clk)
	// Every board has the flash-interface block the clock bring-up
	// programs, plus the GPIO ports the pin-mux table touches that the
	// workloads don't model behaviourally.
	if err := bus.Attach(dev.NewFlashIF()); err != nil {
		return nil, err
	}
	if err := bus.Attach(dev.NewGPIO(mach.GPIOBBase, inst.Clk)); err != nil {
		return nil, err
	}
	if err := bus.Attach(dev.NewGPIO(mach.GPIOCBase, inst.Clk)); err != nil {
		return nil, err
	}
	for _, d := range inst.Devices {
		if err := bus.Attach(d); err != nil {
			return nil, err
		}
	}
	if inst.NeedsDMA2D {
		if err := bus.Attach(dev.NewDMA2D(inst.Clk, bus)); err != nil {
			return nil, err
		}
	}
	return bus, nil
}

func reader(m *mach.Machine, inst *apps.Instance) apps.ReadGlobal {
	return func(name string, off uint32, size int) uint32 {
		g := inst.Mod.Global(name)
		if g == nil {
			panic(fmt.Sprintf("run: no global %q", name))
		}
		addr, f := m.GlobalAddr(g, true)
		if f != nil {
			panic(f)
		}
		v, f := m.Bus.RawLoad(addr+off, size)
		if f != nil {
			panic(f)
		}
		return v
	}
}

// finish normalizes a run's outcome. A failure is wrapped with where
// the program was when it happened — the faulting operation or
// compartment — so containment verdicts (and users) see where the
// fault was caught, on top of the interpreter's ExecError which names
// the faulting function and PC.
func finish(m *mach.Machine, err error, where string) error {
	if err != nil {
		if where != "" {
			return fmt.Errorf("run: in %s: %w", where, err)
		}
		return err
	}
	if !m.Halted {
		return fmt.Errorf("run: program returned without reaching its halt point")
	}
	return nil
}

// Options tunes a run beyond the paper's defaults.
type Options struct {
	// Policy selects the monitor's fault-recovery policy (OPEC only).
	Policy monitor.Policy
	// Arm, when non-nil, runs right before execution starts — the
	// fault-injection campaign uses it to arm a mach.Injection.
	Arm func(m *mach.Machine)
	// Trace, when non-nil, receives the run's event stream: exception
	// entries, gate crossings, MPU programming, faults, recovery
	// actions. Attached right after boot, before execution starts; nil
	// keeps every emit site on its zero-cost path.
	Trace *trace.Buffer
	// MaxCycles, when non-zero, overrides the instance's cycle budget
	// for this run (the campaign forge sets per-trial budgets on a
	// shared checkpointed machine).
	MaxCycles uint64
	// Backend selects the execution engine: BackendInterp (the
	// reference interpreter), BackendXlat (threaded-code translation),
	// or "" for the process default (OPEC_MACH_BACKEND, else interp).
	// Backends are observably identical — cycle counts, faults, traces
	// and counters match byte for byte; only wall-clock time differs.
	Backend string
}

// OPECWith is OPECPrecompiled with Options. Unlike the plain entry
// points it returns the partial Result alongside a run error, so
// callers can inspect monitor stats and memory after a contained
// fault.
func OPECWith(inst *apps.Instance, b *core.Build, opts Options) (*Result, error) {
	bus, err := newBus(inst)
	if err != nil {
		return nil, err
	}
	mon, err := monitor.Boot(b, bus)
	if err != nil {
		return nil, err
	}
	mon.Policy = opts.Policy
	mon.M.MaxCycles = inst.MaxCycles
	if opts.MaxCycles > 0 {
		mon.M.MaxCycles = opts.MaxCycles
	}
	if err := attachBackend(mon.M, opts.Backend); err != nil {
		return nil, err
	}
	if opts.Trace != nil {
		mon.AttachTrace(opts.Trace)
	}
	if opts.Arm != nil {
		opts.Arm(mon.M)
	}
	res := &Result{Machine: mon.M, Read: reader(mon.M, inst), Mon: mon, Build: b}
	err = mon.Run()
	res.Cycles = mon.M.Clock.Now()
	return res, finish(mon.M, err, "operation "+mon.Current().Name)
}

// ACESWith is ACESPrecompiled with Options (Policy does not apply: the
// baseline runtime has no recovery). Like OPECWith it returns the
// partial Result alongside a run error.
func ACESWith(inst *apps.Instance, b *aces.Build, opts Options) (*Result, error) {
	bus, err := newBus(inst)
	if err != nil {
		return nil, err
	}
	rt, err := aces.Boot(b, bus)
	if err != nil {
		return nil, err
	}
	rt.M.MaxCycles = inst.MaxCycles
	if opts.MaxCycles > 0 {
		rt.M.MaxCycles = opts.MaxCycles
	}
	if err := attachBackend(rt.M, opts.Backend); err != nil {
		return nil, err
	}
	if opts.Trace != nil {
		rt.AttachTrace(opts.Trace)
	}
	if opts.Arm != nil {
		opts.Arm(rt.M)
	}
	res := &Result{Machine: rt.M, Read: reader(rt.M, inst), ACES: rt, ABld: b}
	err = rt.Run()
	res.Cycles = rt.M.Clock.Now()
	return res, finish(rt.M, err, "compartment "+rt.Current().Name)
}

// Vanilla runs the instance as the unprotected baseline binary.
func Vanilla(inst *apps.Instance) (*Result, error) {
	return VanillaWith(inst, Options{})
}

// VanillaWith is Vanilla with Options (Policy does not apply; Trace
// still records exceptions, IRQs and calls even with the MPU off).
func VanillaWith(inst *apps.Instance, opts Options) (*Result, error) {
	van, err := image.BuildVanilla(inst.Mod, inst.Board)
	if err != nil {
		return nil, err
	}
	bus, err := newBus(inst)
	if err != nil {
		return nil, err
	}
	m := van.Instantiate(bus)
	m.MaxCycles = inst.MaxCycles
	if err := attachBackend(m, opts.Backend); err != nil {
		return nil, err
	}
	if opts.Trace != nil {
		m.AttachTrace(opts.Trace)
	}
	if opts.Arm != nil {
		opts.Arm(m)
	}
	res := &Result{Machine: m, Read: reader(m, inst), Van: van}
	_, err = m.Run(inst.Mod.MustFunc("main"))
	res.Cycles = m.Clock.Now()
	return res, finish(m, err, "")
}

// OPEC compiles the instance with OPEC-Compiler and runs it under
// OPEC-Monitor.
func OPEC(inst *apps.Instance) (*Result, error) {
	b, err := core.Compile(inst.Mod, inst.Board, inst.Cfg)
	if err != nil {
		return nil, err
	}
	return OPECPrecompiled(inst, b)
}

// OPECPMP is OPEC on the RISC-V PMP backend (the paper's Section 7
// portability target).
func OPECPMP(inst *apps.Instance) (*Result, error) {
	b, err := core.Compile(inst.Mod, inst.Board, inst.Cfg)
	if err != nil {
		return nil, err
	}
	bus, err := newBus(inst)
	if err != nil {
		return nil, err
	}
	mon, err := monitor.BootPMP(b, bus)
	if err != nil {
		return nil, err
	}
	mon.M.MaxCycles = inst.MaxCycles
	if err := attachBackend(mon.M, ""); err != nil {
		return nil, err
	}
	if err := finish(mon.M, mon.Run(), "operation "+mon.Current().Name); err != nil {
		return nil, err
	}
	return &Result{Cycles: mon.M.Clock.Now(), Machine: mon.M, Read: reader(mon.M, inst), Mon: mon, Build: b}, nil
}

// OPECPrecompiled runs an instance whose module was already compiled
// with core.Compile (callers that inspect or modify the compiled module
// — e.g. attack injection — before running).
func OPECPrecompiled(inst *apps.Instance, b *core.Build) (*Result, error) {
	res, err := OPECWith(inst, b, Options{})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ACESPrecompiled is OPECPrecompiled's ACES counterpart.
func ACESPrecompiled(inst *apps.Instance, b *aces.Build) (*Result, error) {
	res, err := ACESWith(inst, b, Options{})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ACES compiles the instance with the baseline's strategy and runs it
// under the ACES runtime.
func ACES(inst *apps.Instance, strat aces.Strategy) (*Result, error) {
	b, err := aces.Compile(inst.Mod, inst.Board, strat)
	if err != nil {
		return nil, err
	}
	return ACESPrecompiled(inst, b)
}

// AndCheck runs the instance's correctness check against a result.
func AndCheck(inst *apps.Instance, res *Result) error {
	if inst.Check == nil {
		return nil
	}
	return inst.Check(res.Read)
}
