package run

import (
	"fmt"
	"os"

	"opec/internal/mach"
	"opec/internal/xlat"
)

// Execution backend names (Options.Backend / OPEC_MACH_BACKEND).
const (
	// BackendInterp is the reference interpreter — the differential
	// oracle every other backend is checked against.
	BackendInterp = "interp"
	// BackendXlat is the threaded-code translation engine.
	BackendXlat = "xlat"
)

// DefaultBackend is the backend used when Options.Backend is empty,
// initialised from OPEC_MACH_BACKEND. Empty selects the interpreter.
var DefaultBackend = os.Getenv("OPEC_MACH_BACKEND")

// SetDefaultBackend validates and installs the process-wide default
// (the CLIs' -backend flag routes here).
func SetDefaultBackend(name string) error {
	switch name {
	case "", BackendInterp, BackendXlat:
		DefaultBackend = name
		return nil
	}
	return fmt.Errorf("run: unknown execution backend %q (want %s | %s)", name, BackendInterp, BackendXlat)
}

// attachBackend installs the selected execution backend on a booted
// machine. An empty name defers to DefaultBackend. Re-selecting the
// backend a machine already runs is a no-op, so boot-once/fork-many
// contexts keep their warm translation cache across trials.
func attachBackend(m *mach.Machine, name string) error {
	if name == "" {
		name = DefaultBackend
	}
	switch name {
	case "", BackendInterp:
		m.SetBackend(nil)
	case BackendXlat:
		if b := m.ExecBackend(); b != nil && b.Name() == BackendXlat {
			return nil
		}
		m.SetBackend(xlat.New())
	default:
		return fmt.Errorf("run: unknown execution backend %q (want %s | %s)", name, BackendInterp, BackendXlat)
	}
	return nil
}
