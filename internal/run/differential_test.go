package run_test

import (
	"fmt"
	"math/rand"
	"testing"

	"opec/internal/core"
	"opec/internal/image"
	"opec/internal/ir"
	"opec/internal/mach"
	"opec/internal/monitor"
)

// The differential fuzzer: generate random task-structured programs
// over shared globals, run each under the vanilla build and under OPEC
// (both MPU and PMP backends), and require identical final global
// state. Any divergence means the isolation machinery changed program
// semantics — a shadow-synchronization, relocation-table or
// stack-relocation bug.

// genProgram builds a random but always-terminating program: nGlobals
// shared variables, nTasks entry functions each executing a random
// sequence of read-modify-write steps (possibly through helper calls),
// and a main that runs every task several times.
func genProgram(rng *rand.Rand, nGlobals, nTasks int) (*ir.Module, core.Config) {
	m := ir.NewModule("fuzz")
	var globals []*ir.Global
	for i := 0; i < nGlobals; i++ {
		globals = append(globals, m.AddGlobal(&ir.Global{
			Name: fmt.Sprintf("g%d", i), Typ: ir.I32,
			Init: []byte{byte(rng.Intn(256)), 0, 0, 0},
		}))
	}

	// A shared helper so tasks have call depth and shared members.
	mix := ir.NewFunc(m, "mix", "util.c", ir.I32, ir.P("a", ir.I32), ir.P("b", ir.I32))
	mix.Ret(mix.Add(mix.Mul(mix.Arg("a"), ir.CI(31)), mix.Arg("b")))

	var entries []string
	for t := 0; t < nTasks; t++ {
		name := fmt.Sprintf("task%d", t)
		entries = append(entries, name)
		fb := ir.NewFunc(m, name, fmt.Sprintf("task%d.c", t), nil)
		steps := 2 + rng.Intn(6)
		for s := 0; s < steps; s++ {
			src := globals[rng.Intn(len(globals))]
			dst := globals[rng.Intn(len(globals))]
			v := fb.Load(ir.I32, src)
			switch rng.Intn(4) {
			case 0:
				fb.Store(ir.I32, dst, fb.Add(v, ir.CI(uint32(rng.Intn(100)))))
			case 1:
				fb.Store(ir.I32, dst, fb.Xor(v, ir.CI(uint32(rng.Intn(1<<16)))))
			case 2:
				w := fb.Load(ir.I32, dst)
				fb.Store(ir.I32, dst, fb.Call(mix.F, v, w))
			case 3:
				// Local round-trip through the stack.
				slot := fb.Alloca(ir.I32)
				fb.Store(ir.I32, slot, v)
				fb.Store(ir.I32, dst, fb.Load(ir.I32, slot))
			}
		}
		fb.RetVoid()
	}

	mb := ir.NewFunc(m, "main", "main.c", nil)
	rounds := 1 + rng.Intn(3)
	for r := 0; r < rounds; r++ {
		for t := 0; t < nTasks; t++ {
			mb.Call(m.MustFunc(fmt.Sprintf("task%d", t)))
		}
	}
	mb.Halt()
	mb.RetVoid()

	return m, core.Config{Entries: entries}
}

// finalState reads every global's value through the machine's resolver.
func finalState(t *testing.T, mm *mach.Machine, m *ir.Module) []uint32 {
	t.Helper()
	out := make([]uint32, 0, len(m.Globals))
	for _, g := range m.Globals {
		addr, f := mm.GlobalAddr(g, true)
		if f != nil {
			t.Fatalf("resolve %s: %v", g.Name, f)
		}
		v, f := mm.Bus.RawLoad(addr, 4)
		if f != nil {
			t.Fatalf("read %s: %v", g.Name, f)
		}
		out = append(out, v)
	}
	return out
}

func TestDifferentialVanillaVsOPEC(t *testing.T) {
	const trials = 40
	for seed := int64(0); seed < trials; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			nGlobals := 2 + rng.Intn(5)
			nTasks := 1 + rng.Intn(4)

			// Vanilla.
			mv, _ := genProgram(rand.New(rand.NewSource(seed)), nGlobals, nTasks)
			van, err := image.BuildVanilla(mv, mach.STM32F4Discovery())
			if err != nil {
				t.Fatal(err)
			}
			busV := van.NewBus()
			mmV := van.Instantiate(busV)
			mmV.MaxCycles = 10_000_000
			if _, err := mmV.Run(mv.MustFunc("main")); err != nil {
				t.Fatalf("vanilla: %v", err)
			}
			want := finalState(t, mmV, mv)

			// OPEC on the MPU.
			mo, cfg := genProgram(rand.New(rand.NewSource(seed)), nGlobals, nTasks)
			bo, err := core.Compile(mo, mach.STM32F4Discovery(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			busO := mach.NewBus(bo.Board.FlashSize, bo.Board.SRAMSize, &mach.Clock{})
			monO, err := monitor.Boot(bo, busO)
			if err != nil {
				t.Fatal(err)
			}
			monO.M.MaxCycles = 10_000_000
			if err := monO.Run(); err != nil {
				t.Fatalf("OPEC: %v", err)
			}
			gotO := finalState(t, monO.M, mo)

			// OPEC on the PMP.
			mp, cfgP := genProgram(rand.New(rand.NewSource(seed)), nGlobals, nTasks)
			bp, err := core.Compile(mp, mach.STM32F4Discovery(), cfgP)
			if err != nil {
				t.Fatal(err)
			}
			busP := mach.NewBus(bp.Board.FlashSize, bp.Board.SRAMSize, &mach.Clock{})
			monP, err := monitor.BootPMP(bp, busP)
			if err != nil {
				t.Fatal(err)
			}
			monP.M.MaxCycles = 10_000_000
			if err := monP.Run(); err != nil {
				t.Fatalf("OPEC/PMP: %v", err)
			}
			gotP := finalState(t, monP.M, mp)

			for i := range want {
				if gotO[i] != want[i] {
					t.Errorf("g%d diverges under OPEC/MPU: vanilla=%#x opec=%#x", i, want[i], gotO[i])
				}
				if gotP[i] != want[i] {
					t.Errorf("g%d diverges under OPEC/PMP: vanilla=%#x pmp=%#x", i, want[i], gotP[i])
				}
			}
		})
	}
}
