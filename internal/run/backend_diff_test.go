package run_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"opec/internal/apps"
	"opec/internal/core"
	"opec/internal/ir"
	"opec/internal/mach"
	"opec/internal/run"
)

// The backend differential fuzzer: generate random mixed workloads —
// bounded loops, the full binary-operator set, arrays, stack
// round-trips, spilled arguments — and run each under the vanilla and
// OPEC build flavours with both execution backends. The translation
// engine must be observably identical to the interpreter: same return,
// same error text, same absolute cycle count, same final memory and
// the same counter readings. A paranoid-mode sweep rides along so the
// re-adjudicated proof paths are fuzzed too.

// genMixedProgram builds a random always-terminating program that is
// deliberately heavy on translation-unit shapes: long pure runs (fused
// into superinstructions), cmp+branch loop back-edges, load+op+store
// peepholes, helper calls with spilled arguments.
func genMixedProgram(rng *rand.Rand) (*ir.Module, core.Config) {
	m := ir.NewModule("bfuzz")
	nGlobals := 2 + rng.Intn(5)
	var globals []*ir.Global
	for i := 0; i < nGlobals; i++ {
		globals = append(globals, m.AddGlobal(&ir.Global{
			Name: fmt.Sprintf("g%d", i), Typ: ir.I32,
			Init: []byte{byte(rng.Intn(256)), byte(rng.Intn(4)), 0, 0},
		}))
	}
	arr := m.AddGlobal(&ir.Global{Name: "arr", Typ: ir.Array(ir.I32, 8)})

	mix := ir.NewFunc(m, "mix", "util.c", ir.I32, ir.P("a", ir.I32), ir.P("b", ir.I32))
	mix.Ret(mix.Add(mix.Mul(mix.Arg("a"), ir.CI(31)), mix.Arg("b")))

	// Six parameters: the last two always travel through the simulated
	// stack, exercising the spilled-argument accessors on every call.
	wide := ir.NewFunc(m, "mix6", "util.c", ir.I32,
		ir.P("a", ir.I32), ir.P("b", ir.I32), ir.P("c", ir.I32),
		ir.P("d", ir.I32), ir.P("e", ir.I32), ir.P("f", ir.I32))
	{
		s := wide.Xor(wide.Arg("a"), wide.Arg("b"))
		s = wide.Add(s, wide.Mul(wide.Arg("c"), ir.CI(7)))
		s = wide.Xor(s, wide.Arg("d"))
		s = wide.Add(s, wide.Arg("e"))
		s = wide.Xor(s, wide.Arg("f"))
		wide.Ret(s)
	}

	ops := []ir.BinKind{
		ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Rem, ir.And, ir.Or, ir.Xor,
		ir.Shl, ir.Shr, ir.Eq, ir.Ne, ir.Lt, ir.Le, ir.Gt, ir.Ge,
	}

	nTasks := 1 + rng.Intn(4)
	var entries []string
	for t := 0; t < nTasks; t++ {
		name := fmt.Sprintf("task%d", t)
		entries = append(entries, name)
		fb := ir.NewFunc(m, name, fmt.Sprintf("task%d.c", t), nil)

		// A bounded counting loop per task: cmp+branch back-edge, a
		// random body of RMW steps inside.
		iters := 1 + rng.Intn(6)
		loop := fb.NewBlock("loop")
		done := fb.NewBlock("done")
		iSlot := fb.Alloca(ir.I32)
		fb.Store(ir.I32, iSlot, ir.CI(0))
		fb.Br(loop)
		fb.SetBlock(loop)
		iv := fb.Load(ir.I32, iSlot)

		steps := 1 + rng.Intn(5)
		for s := 0; s < steps; s++ {
			src := globals[rng.Intn(len(globals))]
			dst := globals[rng.Intn(len(globals))]
			v := fb.Load(ir.I32, src)
			switch rng.Intn(6) {
			case 0:
				// Load+op+store peephole shape with a random operator;
				// |1 keeps divide/shift operands well-behaved without
				// dodging the wraparound cases (they're deterministic).
				k := ops[rng.Intn(len(ops))]
				fb.Store(ir.I32, dst, fb.Bin(k, v, ir.CI(uint32(rng.Intn(100))|1)))
			case 1:
				// A long pure run: chained ALU ops before one store.
				a := fb.Add(v, iv)
				b := fb.Mul(a, ir.CI(uint32(1+rng.Intn(7))))
				c := fb.Xor(b, ir.CI(uint32(rng.Intn(1<<16))))
				d := fb.Shr(c, ir.CI(uint32(rng.Intn(33))))
				fb.Store(ir.I32, dst, fb.Or(d, ir.CI(1)))
			case 2:
				w := fb.Load(ir.I32, dst)
				fb.Store(ir.I32, dst, fb.Call(mix.F, v, w))
			case 3:
				w := fb.Load(ir.I32, dst)
				fb.Store(ir.I32, dst, fb.Call(wide.F, v, w, iv,
					ir.CI(uint32(rng.Intn(256))), w, v))
			case 4:
				// Array element addressed by a masked induction value.
				el := fb.Index(arr, ir.I32, fb.And(fb.Add(iv, v), ir.CI(7)))
				w := fb.Load(ir.I32, el)
				fb.Store(ir.I32, el, fb.Add(w, v))
				fb.Store(ir.I32, dst, w)
			case 5:
				slot := fb.Alloca(ir.I32)
				fb.Store(ir.I32, slot, v)
				fb.Store(ir.I32, dst, fb.Load(ir.I32, slot))
			}
		}

		nx := fb.Add(iv, ir.CI(1))
		fb.Store(ir.I32, iSlot, nx)
		fb.CondBr(fb.Lt(nx, ir.CI(uint32(iters))), loop, done)
		fb.SetBlock(done)
		fb.RetVoid()
	}

	mb := ir.NewFunc(m, "main", "main.c", nil)
	rounds := 1 + rng.Intn(3)
	for r := 0; r < rounds; r++ {
		for t := 0; t < nTasks; t++ {
			mb.Call(m.MustFunc(fmt.Sprintf("task%d", t)))
		}
	}
	mb.Halt()
	mb.RetVoid()

	return m, core.Config{Entries: entries}
}

// backendObs is everything one run exposes: outcome, time, memory,
// and the full counter set.
type backendObs struct {
	err      string
	cycles   uint64
	globals  []uint32
	counters string
}

func observeRun(t *testing.T, res *run.Result, err error, m *ir.Module) backendObs {
	t.Helper()
	o := backendObs{}
	if err != nil {
		o.err = err.Error()
	}
	if res == nil {
		return o
	}
	o.cycles = res.Cycles
	var sb strings.Builder
	for _, c := range res.Machine.Counters() {
		fmt.Fprintf(&sb, "%s=%d\n", c.Name, c.Value)
	}
	o.counters = sb.String()
	for _, g := range m.Globals {
		addr, f := res.Machine.GlobalAddr(g, true)
		if f != nil {
			t.Fatalf("resolve %s: %v", g.Name, f)
		}
		v, f := res.Machine.Bus.RawLoad(addr, 4)
		if f != nil {
			t.Fatalf("read %s: %v", g.Name, f)
		}
		o.globals = append(o.globals, v)
	}
	return o
}

func compareObs(t *testing.T, scheme string, oi, ox backendObs) {
	t.Helper()
	if oi.err != ox.err {
		t.Errorf("%s err:\n  interp: %s\n  xlat:   %s", scheme, oi.err, ox.err)
	}
	if oi.cycles != ox.cycles {
		t.Errorf("%s cycles: interp=%d xlat=%d", scheme, oi.cycles, ox.cycles)
	}
	if oi.counters != ox.counters {
		t.Errorf("%s counters diverge:\n--- interp ---\n%s--- xlat ---\n%s", scheme, oi.counters, ox.counters)
	}
	if len(oi.globals) != len(ox.globals) {
		t.Fatalf("%s global count: %d vs %d", scheme, len(oi.globals), len(ox.globals))
	}
	for i := range oi.globals {
		if oi.globals[i] != ox.globals[i] {
			t.Errorf("%s g%d: interp=%#x xlat=%#x", scheme, i, oi.globals[i], ox.globals[i])
		}
	}
}

// TestDifferentialInterpVsXlat is the tentpole acceptance suite: 250
// seeds x {vanilla, OPEC} x {interp, xlat} = 1000 mixed-workload runs,
// every observable compared. Every 10th seed additionally repeats the
// OPEC pair under ParanoidProofs, so elided accesses keep being
// re-adjudicated under translation.
func TestDifferentialInterpVsXlat(t *testing.T) {
	const trials = 250
	board := mach.STM32F4Discovery()
	for seed := int64(0); seed < trials; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			vanilla := func(backend string) (backendObs, *ir.Module) {
				m, _ := genMixedProgram(rand.New(rand.NewSource(seed)))
				inst := &apps.Instance{
					Mod: m, Board: board, Clk: &mach.Clock{},
					MaxCycles: 10_000_000,
				}
				res, err := run.VanillaWith(inst, run.Options{Backend: backend})
				return observeRun(t, res, err, m), m
			}
			oi, _ := vanilla(run.BackendInterp)
			ox, _ := vanilla(run.BackendXlat)
			compareObs(t, "vanilla", oi, ox)

			opec := func(backend string) backendObs {
				m, cfg := genMixedProgram(rand.New(rand.NewSource(seed)))
				b, err := core.Compile(m, board, cfg)
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				inst := &apps.Instance{
					Mod: m, Cfg: cfg, Board: board, Clk: &mach.Clock{},
					MaxCycles: 10_000_000,
				}
				res, rerr := run.OPECWith(inst, b, run.Options{Backend: backend})
				return observeRun(t, res, rerr, m)
			}
			pi := opec(run.BackendInterp)
			px := opec(run.BackendXlat)
			compareObs(t, "opec", pi, px)

			if seed%10 == 0 {
				saved := mach.ParanoidProofs
				mach.ParanoidProofs = true
				qi := opec(run.BackendInterp)
				qx := opec(run.BackendXlat)
				mach.ParanoidProofs = saved
				compareObs(t, "opec-paranoid", qi, qx)
			}
		})
	}
}
