// Command opec-vet runs the static least-privilege and isolation
// auditor over one workload's compiled OPEC build and prints the
// resulting diagnostics: over-privilege findings, gate bypasses, MPU
// layout lint, shared-data consistency, the dead-code surface, proof
// coverage and taint findings, plus the least-privilege gap metric.
//
// Usage:
//
//	opec-vet -app PinLock
//	opec-vet -app TCP-Echo -format json
//	opec-vet -app PinLock -format json -diff baseline.vet.json
//	opec-vet -all
//	opec-vet -list
//
// The -diff mode compares against a baseline JSON report (written
// earlier with -format json) and exits non-zero when any diagnostic not
// present in the baseline appears — the CI regression gate.
//
// Exit status: 0 when the audit ran (even with findings), 1 when -diff
// found new diagnostics or -strict found error-severity ones, 2 on
// usage or compile failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"opec"
)

func main() {
	appName := flag.String("app", "", "workload name, case-insensitive (see -list)")
	all := flag.Bool("all", false, "vet every workload")
	list := flag.Bool("list", false, "list available workloads")
	format := flag.String("format", "text", "output format: text or json")
	jsonOut := flag.Bool("json", false, "deprecated alias for -format json")
	diffPath := flag.String("diff", "", "baseline JSON report; exit 1 when new diagnostics appear")
	strict := flag.Bool("strict", false, "exit non-zero when error-severity diagnostics exist")
	counters := flag.Bool("counters", false, "print the audit's totals as registry counters after each report")
	flag.Parse()
	showCounters = *counters
	if *jsonOut {
		*format = "json"
	}
	if *format != "text" && *format != "json" {
		fmt.Fprintf(os.Stderr, "opec-vet: unknown format %q (want text or json)\n", *format)
		os.Exit(2)
	}

	switch {
	case *list:
		for _, a := range opec.Apps() {
			fmt.Println(a.Name)
		}
		return
	case *all:
		errors := 0
		for _, a := range opec.Apps() {
			errors += vetOne(a.Name, *format, *diffPath)
		}
		if *strict && errors > 0 {
			os.Exit(1)
		}
		return
	case *appName == "":
		fmt.Fprintln(os.Stderr, "opec-vet: -app is required (try -list)")
		os.Exit(2)
	}
	if errors := vetOne(*appName, *format, *diffPath); *strict && errors > 0 {
		os.Exit(1)
	}
}

// showCounters appends the registry render to each text report.
var showCounters bool

// vetOne compiles and audits one workload, prints the report, applies
// the -diff regression gate when a baseline is given, and returns the
// number of error-severity diagnostics.
func vetOne(name, format, diffPath string) int {
	app := findApp(name)
	b, err := opec.CompileOPEC(app.New())
	fail(err)
	rep := opec.Vet(b)
	if format == "json" {
		data, err := rep.JSON()
		fail(err)
		fmt.Println(string(data))
	} else {
		fmt.Print(rep.Render())
		if showCounters {
			reg := &opec.CounterRegistry{}
			reg.Register(rep)
			fmt.Printf("counters:\n%s", opec.RenderTraceCounters(reg.Snapshot()))
		}
	}
	if diffPath != "" {
		old, err := opec.VetLoadReport(diffPath)
		fail(err)
		if fresh := opec.VetDiff(old, rep); len(fresh) > 0 {
			fmt.Fprintf(os.Stderr, "opec-vet: %d diagnostics not in baseline %s:\n", len(fresh), diffPath)
			for _, d := range fresh {
				fmt.Fprintf(os.Stderr, "  %s %s: %s\n", d.Code, d.Severity, d.Message)
			}
			os.Exit(1)
		}
	}
	return rep.Count(opec.VetError)
}

// findApp resolves a workload name case-insensitively, so both
// "PinLock" (the paper's spelling) and "pinlock" work.
func findApp(name string) *opec.App {
	for _, a := range opec.Apps() {
		if strings.EqualFold(a.Name, name) {
			return a
		}
	}
	fmt.Fprintf(os.Stderr, "opec-vet: unknown application %q (try -list)\n", name)
	os.Exit(2)
	return nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "opec-vet:", err)
		os.Exit(2)
	}
}
