// Command opec-vet runs the static least-privilege and isolation
// auditor over one workload's compiled OPEC build and prints the
// resulting diagnostics: over-privilege findings, gate bypasses, MPU
// layout lint, shared-data consistency and the dead-code surface, plus
// the least-privilege gap metric.
//
// Usage:
//
//	opec-vet -app PinLock
//	opec-vet -app TCP-Echo -json
//	opec-vet -all
//	opec-vet -list
//
// Exit status: 0 when the audit ran (even with findings), 1 when any
// error-severity diagnostic was found and -strict is set, 2 on usage or
// compile failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"opec"
)

func main() {
	appName := flag.String("app", "", "workload name, case-insensitive (see -list)")
	all := flag.Bool("all", false, "vet every workload")
	list := flag.Bool("list", false, "list available workloads")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	strict := flag.Bool("strict", false, "exit non-zero when error-severity diagnostics exist")
	counters := flag.Bool("counters", false, "print the audit's totals as registry counters after each report")
	flag.Parse()
	showCounters = *counters

	switch {
	case *list:
		for _, a := range opec.Apps() {
			fmt.Println(a.Name)
		}
		return
	case *all:
		errors := 0
		for _, a := range opec.Apps() {
			errors += vetOne(a.Name, *jsonOut)
		}
		if *strict && errors > 0 {
			os.Exit(1)
		}
		return
	case *appName == "":
		fmt.Fprintln(os.Stderr, "opec-vet: -app is required (try -list)")
		os.Exit(2)
	}
	if errors := vetOne(*appName, *jsonOut); *strict && errors > 0 {
		os.Exit(1)
	}
}

// showCounters appends the registry render to each text report.
var showCounters bool

// vetOne compiles and audits one workload, prints the report, and
// returns the number of error-severity diagnostics.
func vetOne(name string, jsonOut bool) int {
	app := findApp(name)
	b, err := opec.CompileOPEC(app.New())
	fail(err)
	rep := opec.Vet(b)
	if jsonOut {
		data, err := rep.JSON()
		fail(err)
		fmt.Println(string(data))
	} else {
		fmt.Print(rep.Render())
		if showCounters {
			reg := &opec.CounterRegistry{}
			reg.Register(rep)
			fmt.Printf("counters:\n%s", opec.RenderTraceCounters(reg.Snapshot()))
		}
	}
	return rep.Count(opec.VetError)
}

// findApp resolves a workload name case-insensitively, so both
// "PinLock" (the paper's spelling) and "pinlock" work.
func findApp(name string) *opec.App {
	for _, a := range opec.Apps() {
		if strings.EqualFold(a.Name, name) {
			return a
		}
	}
	fmt.Fprintf(os.Stderr, "opec-vet: unknown application %q (try -list)\n", name)
	os.Exit(2)
	return nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "opec-vet:", err)
		os.Exit(2)
	}
}
