// Command opec-run executes one of the evaluation workloads on the
// simulated board under a chosen build flavour, verifies the workload's
// end-to-end correctness check, and reports cycles and isolation
// statistics.
//
// Usage:
//
//	opec-run -app PinLock -mode opec
//	opec-run -app TCP-Echo -mode vanilla
//	opec-run -app FatFs-uSD -mode aces1
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"opec"
	"opec/internal/metrics"
)

func main() {
	appName := flag.String("app", "", "workload name")
	mode := flag.String("mode", "opec", "vanilla | opec | opec-pmp | aces1 | aces2 | aces3")
	trace := flag.Bool("trace", false, "print the per-task executed-function trace (the GDB-substitute)")
	flag.Parse()

	if *appName == "" {
		fmt.Fprintln(os.Stderr, "opec-run: -app is required")
		os.Exit(2)
	}
	app, err := opec.AppByName(*appName)
	fail(err)
	inst := app.New()

	if *trace {
		tr, err := metrics.TraceTasks(inst)
		fail(err)
		for _, task := range tr.Order {
			fmt.Printf("task %-18s executed %d functions:\n", task, len(tr.Executed[task]))
			names := make([]string, 0, len(tr.Executed[task]))
			for n := range tr.Executed[task] {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				fmt.Printf("    %s\n", n)
			}
		}
		return
	}

	var res *opec.Result
	switch strings.ToLower(*mode) {
	case "vanilla":
		res, err = opec.RunVanilla(inst)
	case "opec":
		res, err = opec.RunOPEC(inst)
	case "opec-pmp":
		res, err = opec.RunOPECPMP(inst)
	case "aces1":
		res, err = opec.RunACES(inst, opec.ACES1)
	case "aces2":
		res, err = opec.RunACES(inst, opec.ACES2)
	case "aces3":
		res, err = opec.RunACES(inst, opec.ACES3)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	fail(err)

	fmt.Printf("%s under %s on %s: %d cycles, %d instructions\n",
		inst.Mod.Name, *mode, inst.Board.Name, res.Cycles, res.Machine.InstrCount)
	if err := opec.Check(inst, res); err != nil {
		fail(fmt.Errorf("correctness check FAILED: %w", err))
	}
	fmt.Println("correctness check passed")

	if res.Mon != nil {
		s := res.Mon.Stats
		fmt.Printf("monitor: switches=%d wordsSynced=%d relocUpdates=%d stackRelocs=%d periphRemaps=%d emulations=%d\n",
			s.Switches, s.WordsSynced, s.RelocUpdates, s.StackRelocs, s.PeriphRemaps, s.Emulations)
	}
	if res.ACES != nil {
		fmt.Printf("aces: compartment switches=%d emulator hits=%d privileged code=%dB\n",
			res.ACES.Switches, res.ACES.EmulatorHits, res.ABld.PrivilegedCodeBytes())
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "opec-run:", err)
		os.Exit(1)
	}
}
