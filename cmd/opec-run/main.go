// Command opec-run executes one of the evaluation workloads on the
// simulated board under a chosen build flavour, verifies the workload's
// end-to-end correctness check, and reports cycles and isolation
// statistics.
//
// Usage:
//
//	opec-run -app PinLock -mode opec
//	opec-run -app TCP-Echo -mode vanilla
//	opec-run -app FatFs-uSD -mode aces1
//
// With -inject, opec-run replays one fault-injection trial (the spec
// syntax campaigns print) instead of a clean run, and exits non-zero
// when the fault escapes its domain:
//
//	opec-run -app PinLock -mode opec -inject 'store:Lock_Task:1:KEY:0:-1:0xee'
//	opec-run -app PinLock -mode opec -policy restart -inject 'store:Lock_Task:1:KEY:0:-1:0xee'
//	opec-run -app PinLock -mode aces2 -inject 'store:Lock_Task:1:KEY:0:-1:0xee'
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"opec"
	"opec/internal/metrics"
)

func main() {
	appName := flag.String("app", "", "workload name")
	mode := flag.String("mode", "opec", "vanilla | opec | opec-pmp | aces1 | aces2 | aces3")
	trace := flag.Bool("trace", false, "print the per-task executed-function trace (the GDB-substitute)")
	injectSpec := flag.String("inject", "", "replay one fault-injection trial (kind:func:n:target:off:bit:value[:args])")
	policy := flag.String("policy", "abort", "recovery policy under -inject: abort | restart | quarantine")
	flag.Parse()

	if *appName == "" {
		fmt.Fprintln(os.Stderr, "opec-run: -app is required")
		os.Exit(2)
	}
	app, err := opec.AppByName(*appName)
	fail(err)

	if *injectSpec != "" {
		replayTrial(app, *mode, *injectSpec, *policy)
		return
	}
	inst := app.New()

	if *trace {
		tr, err := metrics.TraceTasks(inst)
		fail(err)
		for _, task := range tr.Order {
			fmt.Printf("task %-18s executed %d functions:\n", task, len(tr.Executed[task]))
			names := make([]string, 0, len(tr.Executed[task]))
			for n := range tr.Executed[task] {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				fmt.Printf("    %s\n", n)
			}
		}
		return
	}

	var res *opec.Result
	switch strings.ToLower(*mode) {
	case "vanilla":
		res, err = opec.RunVanilla(inst)
	case "opec":
		res, err = opec.RunOPEC(inst)
	case "opec-pmp":
		res, err = opec.RunOPECPMP(inst)
	case "aces1":
		res, err = opec.RunACES(inst, opec.ACES1)
	case "aces2":
		res, err = opec.RunACES(inst, opec.ACES2)
	case "aces3":
		res, err = opec.RunACES(inst, opec.ACES3)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	fail(err)

	fmt.Printf("%s under %s on %s: %d cycles, %d instructions\n",
		inst.Mod.Name, *mode, inst.Board.Name, res.Cycles, res.Machine.InstrCount)
	if err := opec.Check(inst, res); err != nil {
		fail(fmt.Errorf("correctness check FAILED: %w", err))
	}
	fmt.Println("correctness check passed")

	if res.Mon != nil {
		s := res.Mon.Stats
		fmt.Printf("monitor: switches=%d wordsSynced=%d relocUpdates=%d stackRelocs=%d periphRemaps=%d emulations=%d\n",
			s.Switches, s.WordsSynced, s.RelocUpdates, s.StackRelocs, s.PeriphRemaps, s.Emulations)
	}
	if res.ACES != nil {
		fmt.Printf("aces: compartment switches=%d emulator hits=%d privileged code=%dB\n",
			res.ACES.Switches, res.ACES.EmulatorHits, res.ABld.PrivilegedCodeBytes())
	}
}

// replayTrial runs one fault-injection trial and reports its verdict;
// an uncontained verdict (escape or monitor crash) exits non-zero.
func replayTrial(app *opec.App, mode, specText, policy string) {
	spec, err := opec.ParseInjectSpec(specText)
	fail(err)
	pol, err := opec.ParsePolicy(policy)
	fail(err)

	var out opec.InjectOutcome
	switch strings.ToLower(mode) {
	case "opec":
		out, err = opec.InjectOPEC(app, spec, pol, 0)
	case "aces1":
		out, err = opec.InjectACES(app, spec, opec.ACES1, 0)
	case "aces2":
		out, err = opec.InjectACES(app, spec, opec.ACES2, 0)
	case "aces3":
		out, err = opec.InjectACES(app, spec, opec.ACES3, 0)
	default:
		err = fmt.Errorf("mode %q does not support -inject (want opec | aces1 | aces2 | aces3)", mode)
	}
	fail(err)

	fmt.Printf("%s under %s: trial %s\n", app.Name, mode, spec)
	fmt.Printf("  verdict: %s\n", out.Verdict)
	if out.Err != "" {
		fmt.Printf("  detail:  %s\n", out.Err)
	}
	if out.Restarts > 0 || out.Quarantines > 0 {
		fmt.Printf("  recovery: restarts=%d quarantines=%d restart_cycles=%d\n",
			out.Restarts, out.Quarantines, out.RestartCycles)
	}
	if !out.Verdict.Contained() {
		os.Exit(1)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "opec-run:", err)
		os.Exit(1)
	}
}
