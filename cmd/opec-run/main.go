// Command opec-run executes one of the evaluation workloads on the
// simulated board under a chosen build flavour, verifies the workload's
// end-to-end correctness check, and reports cycles and isolation
// statistics.
//
// Usage:
//
//	opec-run -app PinLock -mode opec
//	opec-run -app TCP-Echo -mode vanilla
//	opec-run -app FatFs-uSD -mode aces1
//
// With -trace, the run records the cycle-stamped event stream (gate
// crossings, exceptions, MPU programming, faults, recovery) and prints
// it in the chosen format; -profile folds the same stream into
// per-operation cycle attribution:
//
//	opec-run -app PinLock -mode opec -trace
//	opec-run -app PinLock -mode opec -trace -trace-format chrome -trace-out pinlock.json
//	opec-run -app PinLock -mode opec -profile
//
// With -inject, opec-run replays one fault-injection trial (the spec
// syntax campaigns print) instead of a clean run, and exits non-zero
// when the fault escapes its domain:
//
//	opec-run -app PinLock -mode opec -inject 'store:Lock_Task:1:KEY:0:-1:0xee'
//	opec-run -app PinLock -mode opec -policy restart -inject 'store:Lock_Task:1:KEY:0:-1:0xee'
//	opec-run -app PinLock -mode aces2 -inject 'store:Lock_Task:1:KEY:0:-1:0xee'
//
// With -replay, opec-run replays one trial of a fork-engine campaign
// from its snapshot coordinate — the snapshot id the campaign printed
// plus the trial spec, joined by '@'. The workload is rebuilt and
// checkpointed (compilation and boot are deterministic), the rebuilt
// checkpoint's id must match the coordinate, and the single trial runs
// forked from it:
//
//	opec-run -app PinLock -mode opec -replay '26a2a02199ee8ebb@store:Lock_Task:1:KEY:0:-1:0xee'
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"opec"
	"opec/internal/metrics"
)

func main() {
	appName := flag.String("app", "", "workload name")
	mode := flag.String("mode", "opec", "vanilla | opec | opec-pmp | aces1 | aces2 | aces3")
	tasks := flag.Bool("tasks", false, "print the per-task executed-function listing (the GDB-substitute)")
	doTrace := flag.Bool("trace", false, "record the run's event trace and print/export it")
	traceFormat := flag.String("trace-format", "text", "trace export format: text | jsonl | chrome")
	traceOut := flag.String("trace-out", "", "write the trace export to this file instead of stdout")
	traceCheck := flag.Bool("trace-check", false, "validate the chrome export (parses, one slice per domain); implies -trace-format chrome")
	doProfile := flag.Bool("profile", false, "print per-operation cycle attribution (implies tracing)")
	traceCap := flag.Int("trace-cap", 0, "event ring capacity (0 = default)")
	quick := flag.Bool("quick", false, "use the Quick-scale workload variant (shrunk rounds, as in tests/CI)")
	injectSpec := flag.String("inject", "", "replay one fault-injection trial (kind:func:n:target:off:bit:value[:args])")
	replaySpec := flag.String("replay", "", "replay one fork-engine campaign trial from '<snapshot-id>@<spec>'")
	policy := flag.String("policy", "abort", "recovery policy under -inject/-replay: abort | restart | quarantine")
	maxCycles := flag.Uint64("max-cycles", 0, "cycle budget for -inject/-replay trials (0 = unlimited); fuzzing campaigns print their trial budget, and replaying a hung finding needs the same budget to reproduce its verdict")
	backend := flag.String("backend", "", "execution backend: interp | xlat (default: OPEC_MACH_BACKEND, else interp); results are byte-identical, only wall-clock differs")
	flag.Parse()

	if *backend != "" { // leave the OPEC_MACH_BACKEND default in place otherwise
		if err := opec.SetExecBackend(*backend); err != nil {
			fmt.Fprintln(os.Stderr, "opec-run:", err)
			os.Exit(2)
		}
	}

	if *appName == "" {
		fmt.Fprintln(os.Stderr, "opec-run: -app is required")
		os.Exit(2)
	}
	app, err := opec.AppByName(*appName)
	fail(err)
	if *quick {
		app = nil
		for _, a := range opec.QuickApps() {
			if a.Name == *appName {
				app = a
			}
		}
		if app == nil {
			fail(fmt.Errorf("no quick-scale variant of %q", *appName))
		}
	}

	if *injectSpec != "" {
		replayTrial(app, *mode, *injectSpec, *policy, *maxCycles)
		return
	}
	if *replaySpec != "" {
		replayFromSnapshot(app, *mode, *replaySpec, *policy, *maxCycles)
		return
	}
	inst := app.New()

	if *tasks {
		tr, err := metrics.TraceTasks(inst)
		fail(err)
		for _, task := range tr.Order {
			fmt.Printf("task %-18s executed %d functions:\n", task, len(tr.Executed[task]))
			names := make([]string, 0, len(tr.Executed[task]))
			for n := range tr.Executed[task] {
				names = append(names, n)
			}
			sort.Strings(names)
			for _, n := range names {
				fmt.Printf("    %s\n", n)
			}
		}
		return
	}

	if *traceCheck {
		*doTrace = true
		*traceFormat = "chrome"
	}
	var buf *opec.TraceBuffer
	var prof *opec.Profiler
	if *doTrace || *doProfile {
		buf = opec.NewTraceBuffer(*traceCap)
		if *doProfile {
			prof = opec.NewProfiler(buf)
		}
	}
	opts := opec.RunOptions{Trace: buf}

	var res *opec.Result
	switch strings.ToLower(*mode) {
	case "vanilla":
		res, err = opec.RunVanillaWith(inst, opts)
	case "opec":
		res, err = opec.RunOPECWith(inst, mustCompileOPEC(inst), opts)
	case "opec-pmp":
		if buf != nil {
			fail(fmt.Errorf("mode opec-pmp does not support -trace/-profile"))
		}
		res, err = opec.RunOPECPMP(inst)
	case "aces1":
		res, err = opec.RunACESWith(inst, mustCompileACES(inst, opec.ACES1), opts)
	case "aces2":
		res, err = opec.RunACESWith(inst, mustCompileACES(inst, opec.ACES2), opts)
	case "aces3":
		res, err = opec.RunACESWith(inst, mustCompileACES(inst, opec.ACES3), opts)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	fail(err)

	fmt.Printf("%s under %s on %s: %d cycles, %d instructions\n",
		inst.Mod.Name, *mode, inst.Board.Name, res.Cycles, res.Machine.InstrCount)
	if err := opec.Check(inst, res); err != nil {
		fail(fmt.Errorf("correctness check FAILED: %w", err))
	}
	fmt.Println("correctness check passed")

	if res.Mon != nil {
		s := res.Mon.Stats
		fmt.Printf("monitor: switches=%d wordsSynced=%d relocUpdates=%d stackRelocs=%d periphRemaps=%d emulations=%d\n",
			s.Switches, s.WordsSynced, s.RelocUpdates, s.StackRelocs, s.PeriphRemaps, s.Emulations)
	}
	if res.ACES != nil {
		fmt.Printf("aces: compartment switches=%d emulator hits=%d privileged code=%dB\n",
			res.ACES.Switches, res.ACES.EmulatorHits, res.ABld.PrivilegedCodeBytes())
	}

	if buf != nil {
		if d := buf.Dropped(); d > 0 {
			fmt.Fprintf(os.Stderr, "opec-run: warning: trace ring dropped %d of %d events — raise -trace-cap for a complete export (counters and drop accounting stay exact)\n",
				d, buf.Emitted())
		}
		// Unified counter snapshot: machine (+ bus, MPU/TLB), monitor or
		// ACES runtime, and the trace bus itself, in stable sorted order.
		reg := &opec.CounterRegistry{}
		reg.Register(res.Machine)
		if res.Mon != nil {
			reg.Register(&res.Mon.Stats)
		}
		if res.ACES != nil {
			reg.Register(res.ACES)
		}
		reg.Register(buf)
		fmt.Printf("counters:\n%s", indent(opec.RenderTraceCounters(reg.Snapshot())))
	}

	if prof != nil {
		p := prof.Finish(res.Cycles)
		fmt.Printf("profile:\n%s", indent(p.Render()))
	}
	if *doTrace {
		exportTrace(buf, res, *traceFormat, *traceOut, *traceCheck)
	}
}

// exportTrace serializes the recorded events and writes them to path
// (or stdout), optionally validating the chrome form against the run's
// domain names.
func exportTrace(buf *opec.TraceBuffer, res *opec.Result, format, path string, check bool) {
	var out []byte
	var err error
	switch format {
	case "text":
		out = []byte(buf.RenderText())
	case "jsonl":
		out, err = opec.ExportTraceJSONL(buf, res.Cycles)
	case "chrome":
		out, err = opec.ExportTraceChrome(buf, res.Cycles)
	default:
		err = fmt.Errorf("unknown trace format %q (want text | jsonl | chrome)", format)
	}
	fail(err)

	if check {
		fail(opec.ValidateChromeTrace(out, domainNames(res)))
		fmt.Println("trace check passed: chrome export parses, every domain has a slice")
	}
	if path == "" {
		os.Stdout.Write(out)
		return
	}
	fail(os.WriteFile(path, out, 0o644))
	fmt.Printf("trace: wrote %d bytes to %s (%s)\n", len(out), path, format)
}

// domainNames lists the isolation domains a trace of this run must
// contain slices for: operations under OPEC, compartments under ACES.
func domainNames(res *opec.Result) []string {
	var names []string
	if res.Build != nil {
		for _, op := range res.Build.Ops {
			names = append(names, op.Name)
		}
	}
	if res.ABld != nil {
		for _, c := range res.ABld.Comps {
			names = append(names, "comp:"+c.Name)
		}
	}
	return names
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "    " + strings.Join(lines, "\n    ") + "\n"
}

func mustCompileOPEC(inst *opec.Instance) *opec.Build {
	b, err := opec.CompileOPEC(inst)
	fail(err)
	return b
}

func mustCompileACES(inst *opec.Instance, s opec.Strategy) *opec.ACESBuild {
	b, err := opec.CompileACES(inst, s)
	fail(err)
	return b
}

// replayTrial runs one fault-injection trial and reports its verdict;
// an uncontained verdict (escape or monitor crash) exits non-zero.
func replayTrial(app *opec.App, mode, specText, policy string, maxCycles uint64) {
	spec, err := opec.ParseInjectSpec(specText)
	fail(err)
	pol, err := opec.ParsePolicy(policy)
	fail(err)

	var out opec.InjectOutcome
	switch strings.ToLower(mode) {
	case "opec":
		out, err = opec.InjectOPEC(app, spec, pol, maxCycles)
	case "aces1":
		out, err = opec.InjectACES(app, spec, opec.ACES1, maxCycles)
	case "aces2":
		out, err = opec.InjectACES(app, spec, opec.ACES2, maxCycles)
	case "aces3":
		out, err = opec.InjectACES(app, spec, opec.ACES3, maxCycles)
	default:
		err = fmt.Errorf("mode %q does not support -inject (want opec | aces1 | aces2 | aces3)", mode)
	}
	fail(err)
	reportTrial(app, mode, spec, out)
}

// replayFromSnapshot replays one fork-engine campaign trial from its
// '<snapshot-id>@<spec>' coordinate: rebuild and checkpoint the
// workload, verify the checkpoint hashes to the recorded id, fork the
// single trial. The '@' separator keeps the coordinate unambiguous —
// specs use ':' internally.
func replayFromSnapshot(app *opec.App, mode, coord, policy string, maxCycles uint64) {
	id, specText, ok := strings.Cut(coord, "@")
	if !ok || id == "" || specText == "" {
		fail(fmt.Errorf("-replay wants '<snapshot-id>@<spec>', got %q", coord))
	}
	spec, err := opec.ParseInjectSpec(specText)
	fail(err)
	pol, err := opec.ParsePolicy(policy)
	fail(err)

	var forge *opec.Forge
	switch strings.ToLower(mode) {
	case "opec":
		forge, err = opec.NewForge(app)
	case "aces2":
		forge, err = opec.NewACESForge(app, opec.ACES2)
	default:
		err = fmt.Errorf("mode %q does not support -replay (want opec | aces2, the campaign schemes)", mode)
	}
	fail(err)
	if got := forge.SnapshotID(); got != id {
		fail(fmt.Errorf("snapshot id mismatch: rebuilt checkpoint is %s, coordinate names %s (different workload scale or build?)", got, id))
	}

	out, err := forge.Run(spec, pol, maxCycles)
	fail(err)
	fmt.Printf("replayed from snapshot %s\n", id)
	reportTrial(app, mode, spec, out)
}

// reportTrial prints a trial's verdict and exits non-zero when the
// fault escaped its domain.
func reportTrial(app *opec.App, mode string, spec opec.InjectSpec, out opec.InjectOutcome) {
	fmt.Printf("%s under %s: trial %s\n", app.Name, mode, spec)
	fmt.Printf("  verdict: %s\n", out.Verdict)
	if out.Err != "" {
		fmt.Printf("  detail:  %s\n", out.Err)
	}
	if out.Cycles > 0 {
		fmt.Printf("  cycles:  %d\n", out.Cycles)
	}
	if out.Restarts > 0 || out.Quarantines > 0 {
		fmt.Printf("  recovery: restarts=%d quarantines=%d restart_cycles=%d\n",
			out.Restarts, out.Quarantines, out.RestartCycles)
	}
	if !out.Verdict.Contained() {
		os.Exit(1)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "opec-run:", err)
		os.Exit(1)
	}
}
