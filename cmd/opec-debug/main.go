// Command opec-debug is the time-travel debugger: it records one run —
// clean, or any inject/fuzz finding named by its replay spec — with
// keyframe state checkpoints and an indexed trace store, then answers
// causal queries about it with deterministic output.
//
// Usage:
//
//	opec-debug -app PinLock -quick info
//	opec-debug -app PinLock -quick -policy restart -inject 'store:Lock_Task:1:KEY:0:-1:0xee' blame
//	opec-debug -app PinLock -quick -policy restart -inject 'store:Lock_Task:1:KEY:0:-1:0xee' seek fault
//	opec-debug -app PinLock -quick -policy restart -inject 'store:Lock_Task:1:KEY:0:-1:0xee' watch KEY
//	opec-debug -app PinLock -quick -policy restart -inject '...' last-writer KEY 20000
//	opec-debug -app PinLock -quick -policy restart -replay '<snapid>@<spec>' blame
//
// Commands:
//
//	info                        recording summary, keyframes, replay coordinate
//	coord                       print only the '<snapid>@<spec>' replay coordinate
//	keyframes                   list the held keyframe checkpoints
//	seek <cycle|fault>          re-execute to a cycle (or the first fault), verifying
//	                            the keyframe digest and the regenerated trace suffix
//	watch <target>[:<len>]      every write attempt on the range (-from/-to bound cycles)
//	last-writer <target> <cyc>  backward slice: who produced the value held at <cyc>
//	blame [cycle]               walk a fault back to the rogue store that caused it
//
// A <target> is a global name ("KEY") or a hex address ("0x20000040"),
// optionally suffixed with a byte length (":4"; globals default to
// their own size, addresses to 1).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"opec"
)

func main() {
	appName := flag.String("app", "", "workload name")
	quick := flag.Bool("quick", false, "use the Quick-scale workload variant (shrunk rounds, as in tests/CI)")
	injectSpec := flag.String("inject", "", "debug one fault-injection trial (kind:func:n:target:off:bit:value[:args])")
	replaySpec := flag.String("replay", "", "debug one fork-engine finding from '<snapshot-id>@<spec>'")
	policy := flag.String("policy", "abort", "recovery policy under -inject/-replay: abort | restart | quarantine")
	maxCycles := flag.Uint64("max-cycles", 0, "cycle budget (0 = the workload's own); replaying a hung finding needs its campaign budget")
	backend := flag.String("backend", "", "execution backend: interp | xlat (default: OPEC_MACH_BACKEND, else interp)")
	keyEvery := flag.Uint64("keyframe-every", 0, "cycles between periodic keyframes (0 = default)")
	maxKeys := flag.Int("max-keyframes", 0, "held keyframes before decimation (0 = default)")
	traceCap := flag.Int("trace-cap", 0, "recording ring capacity (0 = default; the indexed store is complete either way)")
	from := flag.Uint64("from", 0, "watch: first cycle of the reported range")
	to := flag.Uint64("to", 0, "watch: last cycle of the reported range (0 = end of run)")
	counters := flag.Bool("counters", false, "print the debug_* counter snapshot after the query")
	flag.Parse()

	if *appName == "" {
		fmt.Fprintln(os.Stderr, "opec-debug: -app is required")
		os.Exit(2)
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "opec-debug: no command (want info | coord | keyframes | seek | watch | last-writer | blame)")
		os.Exit(2)
	}
	app, err := opec.AppByName(*appName)
	fail(err)
	if *quick {
		app = nil
		for _, a := range opec.QuickApps() {
			if a.Name == *appName {
				app = a
			}
		}
		if app == nil {
			fail(fmt.Errorf("no quick-scale variant of %q", *appName))
		}
	}

	cfg := opec.DebugConfig{
		App:           app,
		MaxCycles:     *maxCycles,
		Backend:       *backend,
		KeyframeEvery: *keyEvery,
		MaxKeyframes:  *maxKeys,
		TraceCap:      *traceCap,
	}
	cfg.Policy, err = opec.ParsePolicy(*policy)
	fail(err)

	switch {
	case *injectSpec != "" && *replaySpec != "":
		fail(fmt.Errorf("-inject and -replay are mutually exclusive"))
	case *injectSpec != "":
		spec, err := opec.ParseInjectSpec(*injectSpec)
		fail(err)
		cfg.Spec = &spec
	case *replaySpec != "":
		id, specText, ok := strings.Cut(*replaySpec, "@")
		if !ok || id == "" || specText == "" {
			fail(fmt.Errorf("-replay wants '<snapshot-id>@<spec>', got %q", *replaySpec))
		}
		spec, err := opec.ParseInjectSpec(specText)
		fail(err)
		cfg.Spec = &spec
		cfg.WantSnapID = id
	}

	s, err := opec.NewDebugSession(cfg)
	fail(err)

	var out string
	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "info":
		out = s.Info()
	case "coord":
		if out = s.Coordinate(); out == "" {
			fail(fmt.Errorf("coord: clean runs have no replay coordinate (use -inject or -replay)"))
		}
		out += "\n"
	case "keyframes":
		out = s.Keyframes().Render()
	case "seek":
		if len(args) != 1 {
			fail(fmt.Errorf("seek wants one argument: a cycle number or 'fault'"))
		}
		out, err = s.Seek(seekCycle(s, args[0]))
		fail(err)
	case "watch":
		if len(args) != 1 {
			fail(fmt.Errorf("watch wants one argument: <global|0xaddr>[:<len>]"))
		}
		addr, n := target(s, args[0])
		out, err = s.Watch(addr, n, *from, *to)
		fail(err)
	case "last-writer":
		if len(args) != 2 {
			fail(fmt.Errorf("last-writer wants two arguments: <global|0xaddr>[:<len>] <cycle>"))
		}
		addr, n := target(s, args[0])
		c, err := strconv.ParseUint(args[1], 0, 64)
		fail(err)
		out, err = s.LastWriter(addr, n, c)
		fail(err)
	case "blame":
		var c uint64
		if len(args) == 1 {
			c, err = strconv.ParseUint(args[0], 0, 64)
			fail(err)
		} else if len(args) > 1 {
			fail(fmt.Errorf("blame wants at most one argument: a cycle number"))
		}
		out, err = s.Blame(c)
		fail(err)
	default:
		fail(fmt.Errorf("unknown command %q (want info | coord | keyframes | seek | watch | last-writer | blame)", cmd))
	}
	fmt.Print(out)

	if *counters {
		reg := &opec.CounterRegistry{}
		reg.Register(s)
		fmt.Printf("counters:\n%s", indent(opec.RenderTraceCounters(reg.Snapshot())))
	}
}

// seekCycle resolves seek's argument: a cycle number, or 'fault' for
// the recording's first fault event.
func seekCycle(s *opec.DebugSession, arg string) uint64 {
	if arg == "fault" {
		c, err := s.FaultCycle()
		fail(err)
		return c
	}
	c, err := strconv.ParseUint(arg, 0, 64)
	fail(err)
	return c
}

// target parses <global|0xaddr>[:<len>] against the session's symbol
// table.
func target(s *opec.DebugSession, arg string) (uint32, int) {
	name, lenText, hasLen := strings.Cut(arg, ":")
	n := 0
	if hasLen {
		v, err := strconv.Atoi(lenText)
		fail(err)
		if v <= 0 {
			fail(fmt.Errorf("target %q: length must be positive", arg))
		}
		n = v
	}
	if strings.HasPrefix(name, "0x") || strings.HasPrefix(name, "0X") {
		a, err := strconv.ParseUint(name, 0, 32)
		fail(err)
		if n == 0 {
			n = 1
		}
		return uint32(a), n
	}
	addr, size, err := s.ResolveGlobal(name)
	fail(err)
	if n == 0 {
		n = size
	}
	return addr, n
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return "    " + strings.Join(lines, "\n    ") + "\n"
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "opec-debug:", err)
		os.Exit(1)
	}
}
