// Command opec-build runs OPEC-Compiler (or the ACES baseline's
// compartment formation) on one of the evaluation workloads and prints
// the resulting isolation policy: operations or compartments, their
// member functions, resource dependencies, data-section layout and MPU
// plans.
//
// Usage:
//
//	opec-build -app PinLock
//	opec-build -app TCP-Echo -policy aces2
//	opec-build -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"opec"
)

func main() {
	appName := flag.String("app", "", "workload name (see -list)")
	policy := flag.String("policy", "opec", "opec | aces1 | aces2 | aces3")
	list := flag.Bool("list", false, "list available workloads")
	verbose := flag.Bool("v", false, "print member functions per domain")
	jsonOut := flag.Bool("json", false, "emit the OPEC policy file as JSON")
	runVet := flag.Bool("vet", false, "run the opec-vet isolation audit after the build (opec policy only)")
	counters := flag.Bool("counters", false, "print the build's policy-size counters (unified registry render)")
	flag.Parse()

	if *list {
		for _, a := range opec.Apps() {
			fmt.Println(a.Name)
		}
		return
	}
	if *appName == "" {
		fmt.Fprintln(os.Stderr, "opec-build: -app is required (try -list)")
		os.Exit(2)
	}
	app, err := opec.AppByName(*appName)
	fail(err)
	inst := app.New()

	switch strings.ToLower(*policy) {
	case "opec":
		b, err := opec.CompileOPEC(inst)
		fail(err)
		if *jsonOut {
			data, err := b.PolicyJSON()
			fail(err)
			fmt.Println(string(data))
			if *runVet {
				data, err := opec.Vet(b).JSON()
				fail(err)
				fmt.Println(string(data))
			}
			return
		}
		printOPEC(b, *verbose)
		if *counters {
			reg := &opec.CounterRegistry{}
			reg.Register(b)
			fmt.Printf("\ncounters:\n%s", opec.RenderTraceCounters(reg.Snapshot()))
		}
		if *runVet {
			fmt.Println()
			fmt.Print(opec.Vet(b).Render())
		}
	case "aces1", "aces2", "aces3":
		strat := map[string]opec.Strategy{"aces1": opec.ACES1, "aces2": opec.ACES2, "aces3": opec.ACES3}[strings.ToLower(*policy)]
		ab, err := opec.CompileACES(inst, strat)
		fail(err)
		fmt.Printf("%s under %s: %d compartments, %d variable groups\n",
			inst.Mod.Name, strat, len(ab.Comps), len(ab.Groups))
		for _, c := range ab.Comps {
			fmt.Printf("  compartment %-28s funcs=%-3d code=%-6d groups=%d priv=%v\n",
				c.Name, len(c.Funcs), c.CodeBytes(), len(c.Groups), c.Privileged)
			if *verbose {
				for _, f := range c.Funcs {
					fmt.Printf("    %s\n", f.Name)
				}
			}
		}
	default:
		fail(fmt.Errorf("unknown policy %q", *policy))
	}
}

func printOPEC(b *opec.Build, verbose bool) {
	fmt.Printf("%s on %s: %d operations, %d external globals\n",
		b.Mod.Name, b.Board.Name, len(b.Ops), len(b.ExternalList))
	fmt.Printf("flash: code=%d monitor=%d rodata=%d metadata=%d (total %d)\n",
		b.CodeBytes, b.MonitorCodeBytes, b.RODataBytes, b.MetadataBytes, b.FlashUsed)
	fmt.Printf("sram:  public=%d reloc=%d heap=%d stack@%#x (total %d)\n\n",
		b.PublicBytes, b.RelocBytes, b.HeapSize, b.StackBase, b.SRAMUsed)
	proofs := map[int]string{}
	if b.Proofs != nil {
		for i := range b.Proofs.Domains {
			d := &b.Proofs.Domains[i]
			proofs[d.ID] = fmt.Sprintf("  proof: static=%d proven=%d (%.1f%%) rejected=%d runtime=%d\n",
				d.Static, d.Proven, d.Coverage(), d.Rejected, d.Runtime)
		}
	}
	for _, op := range b.Ops {
		sec := b.OpSections[op.ID]
		plan := b.MPUFor(op)
		fmt.Printf("operation %-2d %-18s funcs=%-3d gvars=%-5dB section=[%#x +%d] periphRegions=%d virt=%v heap=%v core=%v\n",
			op.ID, op.Name, len(op.Funcs), op.GlobalBytes(), sec.Addr, sec.RegionBytes(),
			len(op.PeriphRegions), plan.Virtualized, op.UsesHeap, op.UsesCorePeriph)
		fmt.Print(proofs[op.ID])
		if verbose {
			for _, f := range op.Funcs {
				fmt.Printf("    %s (%s)\n", f.Name, f.File)
			}
			for _, g := range op.Globals {
				kind := "internal"
				if b.External[g] {
					kind = "external (shadowed)"
				}
				fmt.Printf("    @%-24s %4dB %s\n", g.Name, g.Size(), kind)
			}
		}
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "opec-build:", err)
		os.Exit(1)
	}
}
