// Command opec-bench regenerates the paper's evaluation: every table
// and figure of Section 6 plus the Section 6.1 case study.
//
// Usage:
//
//	opec-bench -exp all
//	opec-bench -exp table1
//	opec-bench -exp figure9 -quick
//	opec-bench -exp casestudy
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"opec"
	"opec/internal/exper"
)

func main() {
	exp := flag.String("exp", "all", "table1 | figure9 | table2 | figure10 | figure11 | table3 | casestudy | all")
	quick := flag.Bool("quick", false, "use reduced workload sizes")
	flag.Parse()

	scale := exper.Full
	if *quick {
		scale = exper.Quick
	}

	want := func(name string) bool { return *exp == "all" || strings.EqualFold(*exp, name) }
	ran := false

	if want("table1") {
		rows, err := opec.Table1(scale)
		fail(err)
		fmt.Println(opec.RenderTable1(rows))
		ran = true
	}
	if want("figure9") {
		rows, err := opec.Figure9(scale)
		fail(err)
		fmt.Println(opec.RenderFigure9(rows))
		ran = true
	}
	if want("table2") {
		rows, err := opec.Table2(scale)
		fail(err)
		fmt.Println(opec.RenderTable2(rows))
		ran = true
	}
	if want("figure10") {
		series, err := opec.Figure10(scale)
		fail(err)
		fmt.Println(opec.RenderFigure10(series))
		ran = true
	}
	if want("figure11") {
		series, err := opec.Figure11(scale)
		fail(err)
		fmt.Println(opec.RenderFigure11(series))
		ran = true
	}
	if want("table3") {
		rows, err := opec.Table3(scale)
		fail(err)
		fmt.Println(opec.RenderTable3(rows))
		ran = true
	}
	if want("casestudy") {
		res, err := opec.PinLockCaseStudy()
		fail(err)
		fmt.Println("Section 6.1 case study: arbitrary write to KEY from compromised Lock_Task")
		fmt.Printf("  under OPEC: blocked=%v (%s)\n", res.OPECBlocked, res.OPECFault)
		fmt.Printf("  under ACES: KEY overwritten=%v\n", res.ACESKeyOverwritten)
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "opec-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "opec-bench:", err)
		os.Exit(1)
	}
}
