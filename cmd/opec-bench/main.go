// Command opec-bench regenerates the paper's evaluation: every table
// and figure of Section 6 plus the Section 6.1 case study.
//
// All experiments of one invocation share a single harness, so builds
// and runs memoized by one table are reused by the next (Table 2 finds
// Figure 9's vanilla and OPEC runs already cached, Figure 11 reuses
// Figure 10's ACES builds). Per-app work fans out over -parallel
// workers; results are reassembled in the fixed application order, so
// the output is byte-identical at every parallelism level.
//
// Usage:
//
//	opec-bench -exp all
//	opec-bench -exp all -parallel 8
//	opec-bench -exp table1
//	opec-bench -exp figure9 -quick
//	opec-bench -exp casestudy
//	opec-bench -exp profile -quick
//	opec-bench -exp inject -seed 1 -policy restart
//	opec-bench -exp inject -quick -assert-contained
//	opec-bench -exp inject -quick -inject-engine diff
//	opec-bench -exp fuzz -quick -fuzz-budget 2000 -assert-contained
//	opec-bench -exp fuzz -quick -fuzz-random
//	opec-bench -exp bench -benchjson BENCH_mach.json
//	opec-bench -validate BENCH_mach.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"opec"
)

func main() {
	exp := flag.String("exp", "all", "table1 | figure9 | table2 | figure10 | figure11 | table3 | casestudy | profile | inject | fuzz | bench | all")
	quick := flag.Bool("quick", false, "use reduced workload sizes")
	parallel := flag.Int("parallel", 0, "max concurrent per-app jobs (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1, "fault-injection campaign seed (-exp inject)")
	policy := flag.String("policy", "abort", "recovery policy for -exp inject: abort | restart | quarantine")
	assertContained := flag.Bool("assert-contained", false, "with -exp inject/fuzz: exit non-zero unless every OPEC trial is contained")
	fuzzBudget := flag.Int("fuzz-budget", opec.FuzzBudget, "fuzz inputs to execute (-exp fuzz); -seed seeds the campaign")
	fuzzRandom := flag.Bool("fuzz-random", false, "with -exp fuzz: ablate coverage guidance (same mutators, corpus frozen at the seeds)")
	injectEngine := flag.String("inject-engine", "fork", "trial engine for -exp inject: fork (boot once per row, fork every trial) | boot (power-on per trial) | diff (run both, exit non-zero unless byte-identical)")
	benchjson := flag.String("benchjson", "", "write the simulator-throughput baseline (BENCH_mach.json) to this file; implies -exp bench unless another experiment is named")
	validate := flag.String("validate", "", "validate an existing BENCH_mach.json and exit")
	backend := flag.String("backend", "", "execution backend: interp | xlat (default: OPEC_MACH_BACKEND, else interp); results are byte-identical, only wall-clock differs")
	flag.Parse()

	if *backend != "" { // leave the OPEC_MACH_BACKEND default in place otherwise
		fail(opec.SetExecBackend(*backend))
	}

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		fail(err)
		rep, err := opec.ValidateBenchReport(data)
		fail(err)
		fmt.Printf("%s: valid %s report (scale %s, %d workloads, %d experiments)\n",
			*validate, rep.Schema, rep.Scale, len(rep.Workloads), len(rep.Experiments))
		return
	}

	scale := opec.Full
	if *quick {
		scale = opec.Quick
	}
	if *benchjson != "" && *exp == "all" {
		*exp = "bench"
	}
	h := opec.NewHarness(*parallel)

	want := func(name string) bool { return *exp == "all" || strings.EqualFold(*exp, name) }
	ran := false

	if want("table1") {
		rows, err := h.Table1(scale)
		fail(err)
		fmt.Println(opec.RenderTable1(rows))
		ran = true
	}
	if want("figure9") {
		rows, err := h.Figure9(scale)
		fail(err)
		fmt.Println(opec.RenderFigure9(rows))
		ran = true
	}
	if want("table2") {
		rows, err := h.Table2(scale)
		fail(err)
		fmt.Println(opec.RenderTable2(rows))
		ran = true
	}
	if want("figure10") {
		series, err := h.Figure10(scale)
		fail(err)
		fmt.Println(opec.RenderFigure10(series))
		ran = true
	}
	if want("figure11") {
		series, err := h.Figure11(scale)
		fail(err)
		fmt.Println(opec.RenderFigure11(series))
		ran = true
	}
	if want("table3") {
		rows, err := h.Table3(scale)
		fail(err)
		fmt.Println(opec.RenderTable3(rows))
		ran = true
	}
	if want("profile") {
		rows, err := h.Profile(scale)
		fail(err)
		fmt.Println(opec.RenderProfile(rows))
		ran = true
	}
	if want("casestudy") {
		res, err := opec.PinLockCaseStudy()
		fail(err)
		fmt.Println("Section 6.1 case study: arbitrary write to KEY from compromised Lock_Task")
		fmt.Printf("  under OPEC: blocked=%v (%s)\n", res.OPECBlocked, res.OPECFault)
		fmt.Printf("  under ACES: KEY overwritten=%v\n", res.ACESKeyOverwritten)
		ran = true
	}
	// Not part of -exp all: every trial compiles and runs a fresh
	// workload, so a campaign multiplies the sweep's cost.
	if strings.EqualFold(*exp, "inject") {
		pol, err := opec.ParsePolicy(*policy)
		fail(err)
		cfg := opec.DefaultInjectConfig(*seed)
		var rows []opec.InjectRow
		switch strings.ToLower(*injectEngine) {
		case "fork":
			rows, err = h.InjectWith(scale, cfg, pol, opec.EngineFork)
		case "boot":
			rows, err = h.InjectWith(scale, cfg, pol, opec.EngineBoot)
		case "diff":
			// The correctness invariant, end to end: the same campaign on
			// both engines must agree byte for byte — rendered table,
			// per-trial verdicts, error text, cycles, recovery counters.
			var boot []opec.InjectRow
			boot, err = h.InjectWith(scale, cfg, pol, opec.EngineBoot)
			fail(err)
			rows, err = h.InjectWith(scale, cfg, pol, opec.EngineFork)
			fail(err)
			if !opec.InjectRunsIdentical(boot, rows) {
				fmt.Print(opec.RenderInject(boot))
				fmt.Print(opec.RenderInject(rows))
				fail(fmt.Errorf("inject: fork engine diverged from power-on engine"))
			}
			trials := 0
			for _, r := range rows {
				trials += r.Trials
			}
			fmt.Printf("differential: fork == boot over %d trials\n", trials)
		default:
			err = fmt.Errorf("unknown -inject-engine %q (want fork | boot | diff)", *injectEngine)
		}
		fail(err)
		fmt.Println(opec.RenderInject(rows))
		quickFlag := ""
		if *quick {
			quickFlag = " -quick"
		}
		for _, r := range rows {
			if r.SnapID != "" && len(r.Outcomes) > 0 {
				fmt.Printf("  replay any %s/%s trial: opec-run -app %s -mode %s%s -replay '%s@<spec>'\n",
					r.App, r.Scheme, r.App, replayMode(r.Scheme), quickFlag, r.SnapID)
			}
		}
		if *assertContained {
			for _, r := range rows {
				if r.Scheme == "OPEC" && r.Contained() != r.Trials {
					fail(fmt.Errorf("inject: %s under OPEC: only %d/%d trials contained (first escape: %s)",
						r.App, r.Contained(), r.Trials, r.FirstEscape))
				}
			}
			fmt.Println("assert-contained: every OPEC trial contained")
		}
		ran = true
	}
	// Not part of -exp all: a fuzzing campaign's cost is set by its
	// budget, not the sweep's shape.
	if strings.EqualFold(*exp, "fuzz") {
		pol, err := opec.ParsePolicy(*policy)
		fail(err)
		rep, err := h.Fuzz(scale, *seed, *fuzzBudget, *fuzzRandom, pol, *backend)
		fail(err)
		fmt.Print(opec.RenderFuzz(rep))
		quickFlag := ""
		if *quick {
			quickFlag = " -quick"
		}
		if len(rep.Findings) > 0 {
			fmt.Printf("  replay any finding: opec-run -app %s -mode opec%s -max-cycles %d -replay '%s@<spec>'\n",
				rep.App, quickFlag, rep.TrialCycles, rep.SnapshotID)
		}
		if *assertContained {
			if n := rep.Escapes(); n > 0 {
				fail(fmt.Errorf("fuzz: %d of %d inputs escaped isolation", n, rep.Inputs))
			}
			fmt.Println("assert-contained: every fuzz input contained")
		}
		ran = true
	}
	// Not part of -exp all: the bench sweep re-times fresh runs and
	// would double every workload's cost.
	if strings.EqualFold(*exp, "bench") {
		rep, err := opec.CollectBench(scale, *parallel)
		fail(err)
		data, err := opec.MarshalBenchReport(rep)
		fail(err)
		out := *benchjson
		if out == "" {
			out = "BENCH_mach.json"
		}
		fail(os.WriteFile(out, data, 0o644))
		fmt.Printf("wrote %s (%s scale, %d workloads, %d experiments)\n",
			out, rep.Scale, len(rep.Workloads), len(rep.Experiments))
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "opec-bench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// replayMode maps a campaign scheme to the opec-run -mode that
// replays its trials.
func replayMode(scheme string) string {
	if scheme == "ACES-2" {
		return "aces2"
	}
	return "opec"
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "opec-bench:", err)
		os.Exit(1)
	}
}
