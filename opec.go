// Package opec is a from-scratch reproduction of "OPEC: Operation-based
// Security Isolation for Bare-metal Embedded Systems" (EuroSys 2022):
// the operation-based isolation scheme itself (compiler partitioning +
// privileged reference monitor), the ACES baseline it is evaluated
// against, and the full substrate the paper's evaluation runs on — an
// ARMv7-M-class machine simulator with an 8-region MPU, two STM32 board
// models, device peripherals, a HAL-style firmware library authored in
// the project IR, and the seven evaluated workloads.
//
// The package is a facade over the internal implementation:
//
//   - Workloads: Apps, AppByName build fresh workload instances.
//   - Running: RunVanilla, RunOPEC, RunACES execute an instance under
//     the three build flavours the paper compares.
//   - Compiling only: CompileOPEC, CompileACES produce build artifacts
//     (partitioning, policies, layouts) without running.
//   - Evaluation: Table1, Figure9, Table2, Figure10, Figure11, Table3
//     regenerate the paper's tables and figures; Render* print them.
//   - Case study: PinLockCaseStudy reproduces Section 6.1's attack
//     contrast between OPEC and ACES.
//   - Observability: NewTraceBuffer + RunOPECWith attach the cycle-
//     stamped event bus to a run; NewProfiler folds events into
//     per-operation attribution; ExportTraceChrome / ExportTraceJSONL
//     serialize traces; ProfileAll runs the profiling experiment.
package opec

import (
	"errors"
	"fmt"

	"opec/internal/aces"
	"opec/internal/apps"
	"opec/internal/core"
	"opec/internal/debug"
	"opec/internal/exper"
	"opec/internal/fuzz"
	"opec/internal/inject"
	"opec/internal/ir"
	"opec/internal/mach"
	"opec/internal/monitor"
	"opec/internal/run"
	"opec/internal/trace"
	"opec/internal/vet"
)

// Core types, re-exported for API users.
type (
	// App is a named workload constructor.
	App = apps.App
	// Instance is one freshly built workload: module, entries, board,
	// devices and its correctness check.
	Instance = apps.Instance
	// Result is a finished run (cycles, machine, per-flavour handles).
	Result = run.Result
	// Build is the OPEC compiler output: operations, layout, policies.
	Build = core.Build
	// Operation is one isolated domain.
	Operation = core.Operation
	// Strategy selects an ACES partitioning policy.
	Strategy = aces.Strategy
	// ACESBuild is the ACES baseline's compile output.
	ACESBuild = aces.Build
	// Monitor is the runtime reference monitor of a booted OPEC image.
	Monitor = monitor.Monitor
	// VetReport is the output of the static isolation auditor.
	VetReport = vet.Report
	// VetDiagnostic is one auditor finding.
	VetDiagnostic = vet.Diagnostic
	// Harness runs the evaluation's experiments over a shared memoized
	// build cache with a bounded worker pool.
	Harness = exper.Harness
	// BuildCache memoizes compiled builds and finished runs keyed by
	// (application, scheme, scale).
	BuildCache = exper.Cache
	// InjectSpec is one replayable fault-injection trial.
	InjectSpec = inject.Spec
	// InjectOutcome is one finished trial with its verdict.
	InjectOutcome = inject.Outcome
	// InjectConfig sizes a seeded fault-injection campaign.
	InjectConfig = inject.Config
	// InjectVerdict classifies a trial's outcome.
	InjectVerdict = inject.Verdict
	// InjectRow is one workload × scheme leg of a campaign.
	InjectRow = exper.InjectRow
	// InjectEngine selects how a campaign executes its trials
	// (boot-once/fork-many versus power-on per trial).
	InjectEngine = exper.InjectEngine
	// Forge is the boot-once/fork-many trial engine for one workload:
	// compile and boot once, checkpoint, fork every trial from the
	// snapshot. Its SnapshotID plus a spec is a complete replay
	// coordinate (opec-run -replay).
	Forge = inject.Forge
	// RecoveryPolicy configures the monitor's reaction to contained
	// faults (abort, restart with backoff, quarantine).
	RecoveryPolicy = monitor.Policy
	// FuzzOptions configures one coverage-guided fuzzing campaign;
	// FuzzReport is its deterministic summary.
	FuzzOptions = fuzz.Options
	FuzzReport  = fuzz.Report
)

// Standard fuzzing-campaign shape (the configuration BENCH v7 records).
const (
	FuzzSeed   = exper.FuzzSeed
	FuzzBudget = exper.FuzzBudget
)

// Fuzzing re-exports.
var (
	// RunFuzz executes one campaign (Harness.Fuzz is the harness-shaped
	// entry point the CLIs use).
	RunFuzz = fuzz.Run
	// RenderFuzz prints a campaign summary.
	RenderFuzz = exper.RenderFuzz
)

// Campaign trial engines.
const (
	EngineFork = exper.EngineFork
	EngineBoot = exper.EngineBoot
)

// The monitor's recovery policy kinds.
const (
	PolicyAbort      = monitor.Abort
	PolicyRestart    = monitor.RestartOperation
	PolicyQuarantine = monitor.Quarantine
)

// Fault-injection and recovery re-exports.
var (
	// ParseInjectSpec parses the replay syntax of opec-run -inject.
	ParseInjectSpec = inject.ParseSpec
	// DefaultInjectConfig is the standard campaign shape at a seed.
	DefaultInjectConfig = inject.DefaultConfig
	// ParsePolicy resolves a recovery policy name.
	ParsePolicy = monitor.ParsePolicy
	// InjectOPEC replays one trial under OPEC with a recovery policy.
	InjectOPEC = inject.RunOPEC
	// InjectACES replays one trial under an ACES strategy.
	InjectACES = inject.RunACES
	// RenderInject prints a campaign's containment table.
	RenderInject = exper.RenderInject
	// NewForge boots one workload under OPEC and checkpoints it at the
	// pre-injection point; NewACESForge does the same under an ACES
	// strategy.
	NewForge     = inject.NewForge
	NewACESForge = inject.NewACESForge
	// InjectRunsIdentical is the fork-vs-boot campaign differential:
	// byte-identical tables and per-trial agreement.
	InjectRunsIdentical = exper.InjectRunsIdentical
)

// NewHarness returns an experiment harness with an empty build cache
// running at most parallel concurrent per-app jobs (0 = GOMAXPROCS).
// One harness per sweep is the intended shape: experiments share
// memoized builds and runs, and rendered output is byte-identical at
// every parallelism level.
func NewHarness(parallel int) *Harness { return exper.NewHarness(parallel) }

// The three evaluated ACES strategies.
const (
	ACES1 = aces.Filename
	ACES2 = aces.FilenameNoOpt
	ACES3 = aces.Peripheral
)

// Experiment scale selectors.
const (
	Full  = exper.Full
	Quick = exper.Quick
)

// Vet diagnostic severities.
const (
	VetInfo  = vet.SevInfo
	VetWarn  = vet.SevWarn
	VetError = vet.SevError
)

// Execution-backend names. The interpreter is the reference engine and
// differential oracle; the threaded-code translation engine (xlat) is
// observably identical — same cycles, faults, traces and counters —
// and faster on dispatch-bound code.
const (
	ExecInterp = run.BackendInterp
	ExecXlat   = run.BackendXlat
)

// SetExecBackend selects the process-wide execution backend ("interp",
// "xlat", or "" for the OPEC_MACH_BACKEND environment default). The
// CLIs' -backend flag routes here.
func SetExecBackend(name string) error { return run.SetDefaultBackend(name) }

// Apps returns the seven evaluation workloads at paper scale.
func Apps() []*App { return apps.All() }

// QuickApps returns the seven workloads at the harness's Quick scale
// (shrunk rounds — the size tests, benchmarks and CI smokes use).
func QuickApps() []*App { return exper.AppsFor(exper.Quick) }

// AppByName returns a workload constructor by its paper name
// ("PinLock", "Animation", "FatFs-uSD", "LCD-uSD", "TCP-Echo",
// "Camera", "CoreMark").
func AppByName(name string) (*App, error) { return apps.ByName(name) }

// RunVanilla executes the instance as the unprotected baseline.
func RunVanilla(inst *Instance) (*Result, error) { return run.Vanilla(inst) }

// RunOPEC compiles with OPEC-Compiler and executes under OPEC-Monitor.
func RunOPEC(inst *Instance) (*Result, error) { return run.OPEC(inst) }

// RunOPECPMP executes under the monitor's RISC-V PMP backend — the
// "Other Hardware Platforms" extension of the paper's Section 7.
func RunOPECPMP(inst *Instance) (*Result, error) { return run.OPECPMP(inst) }

// RunACES compiles and executes under the ACES baseline.
func RunACES(inst *Instance, s Strategy) (*Result, error) { return run.ACES(inst, s) }

// Check runs the instance's correctness check against a result.
func Check(inst *Instance, res *Result) error { return run.AndCheck(inst, res) }

// CompileOPEC runs the compiler pipeline only: analysis, partitioning,
// shadow layout, instrumentation.
func CompileOPEC(inst *Instance) (*Build, error) {
	return core.Compile(inst.Mod, inst.Board, inst.Cfg)
}

// CompileACES runs the baseline's compartment formation and layout.
func CompileACES(inst *Instance, s Strategy) (*aces.Build, error) {
	return aces.Compile(inst.Mod, inst.Board, s)
}

// Vet runs the static least-privilege and isolation auditor
// (opec-vet's seven passes) over a compiled build.
func Vet(b *Build) *VetReport { return vet.Run(b) }

// VetDiff returns the diagnostics in cur that are absent from old — the
// regression set opec-vet's -diff gate fails on.
func VetDiff(old, cur *VetReport) []VetDiagnostic { return vet.Diff(old, cur) }

// VetLoadReport parses a JSON vet report (a -diff baseline).
func VetLoadReport(path string) (*VetReport, error) { return vet.LoadReport(path) }

// Evaluation harness re-exports.
var (
	Table1   = exper.Table1
	Figure9  = exper.Figure9
	Table2   = exper.Table2
	Figure10 = exper.Figure10
	Figure11 = exper.Figure11
	Table3   = exper.Table3

	RenderTable1   = exper.RenderTable1
	RenderFigure9  = exper.RenderFigure9
	RenderTable2   = exper.RenderTable2
	RenderFigure10 = exper.RenderFigure10
	RenderFigure11 = exper.RenderFigure11
	RenderTable3   = exper.RenderTable3
)

// Observability re-exports: the event trace bus, the profiler, and the
// unified counter registry.
type (
	// TraceBuffer is the fixed-capacity event ring the simulator,
	// monitor and ACES runtime emit into. A nil buffer disables tracing
	// at zero cost.
	TraceBuffer = trace.Buffer
	// TraceEvent is one cycle-stamped event on the bus.
	TraceEvent = trace.Event
	// Profiler folds the live event stream into per-domain attribution.
	Profiler = trace.Profiler
	// Profile is a finished per-domain cycle-attribution breakdown.
	Profile = trace.Profile
	// OpProfile is one domain's share of a Profile.
	OpProfile = trace.OpProfile
	// Counter is one named monotonic count.
	Counter = trace.Counter
	// CounterRegistry merges counter sources into one sorted snapshot.
	CounterRegistry = trace.Registry
	// RunOptions tunes a run: recovery policy, injection arming, trace
	// attachment.
	RunOptions = run.Options
	// ProfileRow is one workload's row of the profiling experiment.
	ProfileRow = exper.ProfileRow
)

var (
	// NewTraceBuffer allocates an event ring (0 = default capacity).
	NewTraceBuffer = trace.NewBuffer
	// NewProfiler attaches a profiler to a buffer's live stream.
	NewProfiler = trace.NewProfiler
	// ExportTraceJSONL serializes a trace as one JSON object per line.
	ExportTraceJSONL = trace.ExportJSONL
	// ImportTraceJSONL reloads a JSONL trace for re-export or analysis.
	ImportTraceJSONL = trace.ImportJSONL
	// ExportTraceChrome serializes a trace in Chrome trace_event format
	// (chrome://tracing, Perfetto).
	ExportTraceChrome = trace.ExportChrome
	// ValidateChromeTrace checks a Chrome export parses and contains at
	// least one duration slice per required operation.
	ValidateChromeTrace = trace.ValidateChrome
	// RenderTraceCounters prints a counter snapshot, one per line.
	RenderTraceCounters = trace.RenderCounters
	// RunVanillaWith / RunOPECWith / RunACESWith are the Options-taking
	// run entry points (trace attachment, recovery policy, injection).
	RunVanillaWith = run.VanillaWith
	RunOPECWith    = run.OPECWith
	RunACESWith    = run.ACESWith
	// InjectOPECTraced replays one fault-injection trial with a trace
	// buffer attached (the golden-trace path for Section 6.1).
	InjectOPECTraced = inject.TraceOPEC
	// ProfileAll runs the profiling experiment over every workload.
	ProfileAll = exper.ProfileAll
	// RenderProfile prints the profiling experiment's tables.
	RenderProfile = exper.RenderProfile
)

// Time-travel debugger re-exports (internal/debug, cmd/opec-debug).
type (
	// DebugConfig describes one debuggable run: a workload plus an
	// optional inject/fuzz spec and the checkpointer shape.
	DebugConfig = debug.Config
	// DebugSession is one recorded run with its indexed trace store and
	// keyframe checkpoints, answering seek / watch / last-writer /
	// blame queries by deterministic re-execution.
	DebugSession = debug.Session
)

var (
	// NewDebugSession boots and records a run for time-travel queries.
	NewDebugSession = debug.New
)

// Simulator-throughput baseline (BENCH_mach.json) re-exports.
type (
	// BenchReport is the machine-readable simulator perf baseline.
	BenchReport = exper.BenchReport
	// BenchWorkload is one timed app × scheme run inside a BenchReport.
	BenchWorkload = exper.BenchWorkload
	// BenchBackend is the execution-backend A/B section (schema v6).
	BenchBackend = exper.BenchBackend
)

var (
	// CollectBench measures per-workload simulated MIPS and harness
	// sweep timings at a scale.
	CollectBench = exper.CollectBench
	// MarshalBenchReport renders a report as indented JSON.
	MarshalBenchReport = exper.MarshalBenchReport
	// ValidateBenchReport checks a BENCH_mach.json document is complete.
	ValidateBenchReport = exper.ValidateBenchReport
)

// CaseStudyResult reports Section 6.1's contrast: the same arbitrary
// write targeting PinLock's KEY from a compromised Lock_Task, under
// OPEC and under ACES.
type CaseStudyResult struct {
	// OPECBlocked reports that OPEC terminated the attack with a
	// MemManage fault before KEY was modified.
	OPECBlocked bool
	// OPECFault is the fault that stopped the attack.
	OPECFault string
	// ACESKeyOverwritten reports that the write landed under ACES
	// (KEY co-located in a merged, accessible region).
	ACESKeyOverwritten bool
}

// PinLockCaseStudy reproduces the Section 6.1 case study: it compiles
// PinLock twice, injects the post-compile arbitrary write
// (Lock_Task exploiting the buggy HAL_UART_Receive_IT to overwrite
// KEY), and runs both builds.
func PinLockCaseStudy() (*CaseStudyResult, error) {
	out := &CaseStudyResult{}

	// --- OPEC ---
	inst := apps.PinLockN(1).New()
	b, err := core.Compile(inst.Mod, inst.Board, inst.Cfg)
	if err != nil {
		return nil, err
	}
	injectKeyOverwrite(inst.Mod)
	if _, err = run.OPECPrecompiled(inst, b); err == nil {
		return nil, errors.New("opec: attack unexpectedly survived under OPEC")
	}
	var f *mach.Fault
	if errors.As(err, &f) && f.Kind == mach.FaultMemManage && f.Write {
		out.OPECBlocked = true
		out.OPECFault = f.Error()
	} else {
		return nil, fmt.Errorf("opec: unexpected attack outcome under OPEC: %w", err)
	}

	// --- ACES ---
	instA := apps.PinLockN(1).New()
	ab, err := aces.Compile(instA.Mod, instA.Board, aces.FilenameNoOpt)
	if err != nil {
		return nil, err
	}
	injectKeyOverwrite(instA.Mod)
	resA, err := run.ACESPrecompiled(instA, ab)
	if err != nil {
		return nil, fmt.Errorf("opec: ACES run with attack: %w", err)
	}
	key := instA.Mod.Global("KEY")
	v, _ := resA.Machine.Bus.RawLoad(ab.GlobalAddr[key], 1)
	out.ACESKeyOverwritten = v == attackByte
	return out, nil
}

// attackByte is the value the injected arbitrary write stores into KEY.
const attackByte = 0xEE

// injectKeyOverwrite models the runtime compromise: an arbitrary write
// to KEY prepended to Lock_Task after compilation (the compiler never
// saw the access, exactly like an exploited memory-corruption bug).
func injectKeyOverwrite(m *ir.Module) {
	lt := m.MustFunc("Lock_Task")
	key := m.Global("KEY")
	in := &ir.Instr{Op: ir.OpStore, Typ: ir.I8, Args: []ir.Value{key, ir.CI(attackByte)}}
	entry := lt.Entry()
	entry.Instrs = append([]*ir.Instr{in}, entry.Instrs...)
}
